//! Dense two-phase primal simplex.
//!
//! Solves the LP relaxation of a [`Problem`] (integrality marks ignored).
//! Variables are shifted to zero lower bounds; finite upper bounds become
//! explicit rows. Phase 1 minimizes artificial infeasibility; phase 2 the
//! real objective. Pivoting uses Dantzig's rule with a Bland fallback after
//! a fixed iteration budget to guarantee termination on degenerate models.

use crate::model::{Problem, Sense, Solution, SolverError, Status};

const EPS: f64 = 1e-9;
const FEAS_TOL: f64 = 1e-7;

/// Solves the LP relaxation of `problem`.
///
/// Returns [`Status::Optimal`], [`Status::Infeasible`] or
/// [`Status::Unbounded`]; the values vector is in the original (unshifted)
/// variable space.
pub fn solve_lp(problem: &Problem) -> Result<Solution, SolverError> {
    problem.validate()?;
    let n = problem.num_vars();
    let lowers: Vec<f64> = problem.variables().iter().map(|v| v.lower).collect();

    // Build rows over the shifted variables y = x - l >= 0.
    struct Row {
        coefs: Vec<f64>,
        sense: Sense,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for c in problem.constraints() {
        let mut coefs = vec![0.0; n];
        let mut shift = 0.0;
        for &(id, coef) in &c.terms {
            coefs[id.0] += coef;
            shift += coef * lowers[id.0];
        }
        rows.push(Row {
            coefs,
            sense: c.sense,
            rhs: c.rhs - shift,
        });
    }
    // Finite upper bounds become explicit rows y_j <= u_j - l_j.
    for (j, v) in problem.variables().iter().enumerate() {
        if v.upper.is_finite() {
            let mut coefs = vec![0.0; n];
            coefs[j] = 1.0;
            rows.push(Row {
                coefs,
                sense: Sense::Le,
                rhs: v.upper - v.lower,
            });
        }
    }

    // Normalize rhs >= 0.
    for row in &mut rows {
        if row.rhs < 0.0 {
            for c in &mut row.coefs {
                *c = -*c;
            }
            row.rhs = -row.rhs;
            row.sense = match row.sense {
                Sense::Le => Sense::Ge,
                Sense::Ge => Sense::Le,
                Sense::Eq => Sense::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: [structural n][slack/surplus][artificial][rhs].
    let mut num_slack = 0usize;
    let mut num_art = 0usize;
    for row in &rows {
        match row.sense {
            Sense::Le => num_slack += 1,
            Sense::Ge => {
                num_slack += 1;
                num_art += 1;
            }
            Sense::Eq => num_art += 1,
        }
    }
    let total = n + num_slack + num_art;
    let mut a = vec![vec![0.0f64; total + 1]; m];
    let mut basis = vec![0usize; m];
    let art_start = n + num_slack;

    let mut slack_idx = n;
    let mut art_idx = art_start;
    for (i, row) in rows.iter().enumerate() {
        a[i][..n].copy_from_slice(&row.coefs);
        a[i][total] = row.rhs;
        match row.sense {
            Sense::Le => {
                a[i][slack_idx] = 1.0;
                basis[i] = slack_idx;
                slack_idx += 1;
            }
            Sense::Ge => {
                a[i][slack_idx] = -1.0;
                slack_idx += 1;
                a[i][art_idx] = 1.0;
                basis[i] = art_idx;
                art_idx += 1;
            }
            Sense::Eq => {
                a[i][art_idx] = 1.0;
                basis[i] = art_idx;
                art_idx += 1;
            }
        }
    }

    // Phase 1: minimize the sum of artificial variables.
    if num_art > 0 {
        let mut cost = vec![0.0f64; total];
        for c in cost.iter_mut().take(total).skip(art_start) {
            *c = 1.0;
        }
        let status = run_simplex(&mut a, &mut basis, &cost, total, Some(art_start));
        if status == InnerStatus::Unbounded {
            // Phase 1 is bounded below by 0; this cannot happen on a sound
            // tableau, treat as infeasible defensively.
            return Ok(Solution {
                status: Status::Infeasible,
                objective: 0.0,
                values: vec![],
            });
        }
        let phase1_obj: f64 = basis
            .iter()
            .enumerate()
            .filter(|(_, &bj)| bj >= art_start)
            .map(|(i, _)| a[i][total])
            .sum();
        if phase1_obj > FEAS_TOL {
            return Ok(Solution {
                status: Status::Infeasible,
                objective: 0.0,
                values: vec![],
            });
        }
        // Drive remaining (degenerate) artificials out of the basis.
        for i in 0..m {
            if basis[i] >= art_start {
                if let Some(col) = (0..art_start).find(|&j| a[i][j].abs() > EPS) {
                    pivot(&mut a, &mut basis, i, col, total);
                }
                // If no pivot column exists the row is all-zero: harmless.
            }
        }
    }

    // Phase 2: original objective over shifted variables (constant term
    // from the shift is re-added at the end via objective_value).
    let mut cost = vec![0.0f64; total];
    cost[..n].copy_from_slice(problem.objective());
    let status = run_simplex(&mut a, &mut basis, &cost, total, Some(art_start));
    if status == InnerStatus::Unbounded {
        return Ok(Solution {
            status: Status::Unbounded,
            objective: f64::NEG_INFINITY,
            values: vec![],
        });
    }

    let mut values = lowers;
    for (i, &bj) in basis.iter().enumerate() {
        if bj < n {
            values[bj] += a[i][total];
        }
    }
    let objective = problem.objective_value(&values);
    Ok(Solution {
        status: Status::Optimal,
        objective,
        values,
    })
}

#[derive(Debug, PartialEq, Eq)]
enum InnerStatus {
    Optimal,
    Unbounded,
}

/// Runs primal simplex on the tableau; `forbid_from` columns (artificials
/// in phase 2) are never allowed to enter.
fn run_simplex(
    a: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    total: usize,
    forbid_from: Option<usize>,
) -> InnerStatus {
    let m = a.len();
    let forbid = forbid_from.unwrap_or(total);
    let max_dantzig = 20 * (m + total) + 200;
    let max_iters = 200 * (m + total) + 2000;

    for iter in 0..max_iters {
        // Reduced costs: r_j = c_j - c_B B^-1 A_j, computed directly from
        // the maintained tableau.
        let mut entering: Option<usize> = None;
        let mut best = -EPS;
        for j in 0..total {
            // Artificial columns never (re-)enter: they start basic in
            // phase 1 and are forbidden in phase 2.
            if j >= forbid || basis.contains(&j) {
                continue;
            }
            let mut rj = cost[j];
            for (i, &bi) in basis.iter().enumerate() {
                let cb = cost[bi];
                if cb != 0.0 {
                    rj -= cb * a[i][j];
                }
            }
            if iter < max_dantzig {
                if rj < best {
                    best = rj;
                    entering = Some(j);
                }
            } else if rj < -EPS {
                // Bland: first improving column.
                entering = Some(j);
                break;
            }
        }
        let Some(e) = entering else {
            return InnerStatus::Optimal;
        };

        // Ratio test (Bland ties by smallest basis index).
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if a[i][e] > EPS {
                let ratio = a[i][total] / a[i][e];
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(l) = leave else {
            return InnerStatus::Unbounded;
        };
        pivot(a, basis, l, e, total);
    }
    // Iteration budget exhausted: report the current (feasible) point as
    // optimal-so-far; on these problem sizes this path is unreachable.
    InnerStatus::Optimal
}

fn pivot(a: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, total: usize) {
    let p = a[row][col];
    for v in &mut a[row][..=total] {
        *v /= p;
    }
    // Temporarily take the pivot row out so the eliminations below can
    // borrow it immutably while mutating the other rows.
    let pivot_row = std::mem::take(&mut a[row]);
    for (i, r) in a.iter_mut().enumerate() {
        if i == row {
            continue;
        }
        let f = r[col];
        if f.abs() > 0.0 {
            for (v, &pv) in r[..=total].iter_mut().zip(&pivot_row[..=total]) {
                *v -= f * pv;
            }
        }
    }
    a[row] = pivot_row;
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, Sense};

    #[test]
    fn solves_textbook_lp() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => (2, 6), 36.
        let mut p = Problem::new();
        let x = p.add_var(-3.0, 0.0, f64::INFINITY);
        let y = p.add_var(-5.0, 0.0, f64::INFINITY);
        p.add_constraint(vec![(x, 1.0)], Sense::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective + 36.0).abs() < 1e-6);
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn handles_ge_and_eq_constraints() {
        // min x + y  s.t. x + y >= 3, x - y == 1 => (2, 1), 3.
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Sense::Eq, 1.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(
            (sol.objective - 3.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasibility() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, 1.0);
        p.add_constraint(vec![(x, 1.0)], Sense::Ge, 5.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, f64::INFINITY);
        p.add_constraint(vec![(x, -1.0)], Sense::Le, 0.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Unbounded);
    }

    #[test]
    fn respects_variable_bounds() {
        // min -x with x in [0, 7].
        let mut p = Problem::new();
        let _x = p.add_var(-1.0, 0.0, 7.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.values[0] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn respects_nonzero_lower_bounds() {
        // min x + y with x >= 2, y in [3, 10], x + y >= 6 => (3, 3) or (2, 4): obj 6.
        let mut p = Problem::new();
        let x = p.add_var(1.0, 2.0, f64::INFINITY);
        let y = p.add_var(1.0, 3.0, 10.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 6.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 6.0).abs() < 1e-6);
        assert!(sol.values[0] >= 2.0 - 1e-9);
        assert!(sol.values[1] >= 3.0 - 1e-9);
    }

    #[test]
    fn degenerate_problems_terminate() {
        // Classic degenerate LP; Bland fallback must prevent cycling.
        let mut p = Problem::new();
        let x1 = p.add_var(-0.75, 0.0, f64::INFINITY);
        let x2 = p.add_var(150.0, 0.0, f64::INFINITY);
        let x3 = p.add_var(-0.02, 0.0, f64::INFINITY);
        let x4 = p.add_var(6.0, 0.0, f64::INFINITY);
        p.add_constraint(
            vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(
            vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(vec![(x3, 1.0)], Sense::Le, 1.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(
            (sol.objective + 0.05).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
    }

    #[test]
    fn lp_relaxation_of_binary_problem() {
        // min -(x + y) with x, y binary and x + y <= 1.5 relaxes to 1.5.
        let mut p = Problem::new();
        let x = p.add_bin_var(-1.0);
        let y = p.add_bin_var(-1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 1.5);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective + 1.5).abs() < 1e-6);
    }
}
