//! Dense two-phase primal simplex.
//!
//! Solves the LP relaxation of a [`Problem`] (integrality marks ignored).
//! Variables are shifted to zero lower bounds; finite upper bounds become
//! explicit rows. Phase 1 minimizes artificial infeasibility; phase 2 the
//! real objective. Pivoting uses Dantzig's rule with a Bland fallback after
//! a fixed iteration budget to guarantee termination on degenerate models.
//!
//! All working storage lives in a caller-owned [`LpScratch`] so
//! branch-and-bound can solve thousands of node relaxations without
//! touching the heap: the tableau is one flat row-major buffer that is
//! `resize`d (never reallocated once [`LpScratch::reserve_for`] has run)
//! between solves, and per-node bound changes are passed as an override
//! slice instead of cloning the [`Problem`].

use crate::model::{Problem, Sense, Solution, SolverError, Status};

const EPS: f64 = 1e-9;
const FEAS_TOL: f64 = 1e-7;

/// Reusable working storage for [`solve_lp_scratch`].
///
/// Holds the row-construction buffers, the flat simplex tableau, the
/// basis bookkeeping, and the result values. A scratch sized by
/// [`LpScratch::reserve_for`] performs no heap allocation on subsequent
/// solves of that problem (at any node-bound override), which is the
/// contract `solver/tests/zero_alloc.rs` enforces.
#[derive(Debug, Default)]
pub struct LpScratch {
    /// Constraint rows over structural variables, flat `m x n`.
    row_coefs: Vec<f64>,
    row_sense: Vec<Sense>,
    row_rhs: Vec<f64>,
    /// Flat tableau, `m x (total + 1)` row-major; last column is the rhs.
    a: Vec<f64>,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    cost: Vec<f64>,
    pivot_row: Vec<f64>,
    /// Effective lower bounds used for the shift (base or override).
    lowers: Vec<f64>,
    /// Solution values in the original (unshifted) variable space.
    values: Vec<f64>,
}

/// Status and objective of one scratch solve; the variable assignment
/// stays in [`LpScratch::values`] to avoid a per-solve allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpOutcome {
    /// [`Status::Optimal`], [`Status::Infeasible`] or [`Status::Unbounded`].
    pub status: Status,
    /// Objective at the returned point (meaningless otherwise).
    pub objective: f64,
}

impl LpScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves every buffer for the worst case this problem can reach —
    /// including branch-and-bound nodes that give previously unbounded
    /// variables finite bounds (each finite upper bound adds a row).
    /// After this call, solves of `problem` under any bound override
    /// allocate nothing.
    pub fn reserve_for(&mut self, problem: &Problem) {
        let n = problem.num_vars();
        let m_max = problem.num_constraints() + n;
        // Worst case every row needs both a slack and an artificial.
        let total_max = n + 2 * m_max;
        // Clear first: `reserve` asks for capacity *beyond the current
        // length*, so reserving over a previous solve's leftovers would
        // grow every buffer once per solve.
        self.row_coefs.clear();
        self.row_sense.clear();
        self.row_rhs.clear();
        self.a.clear();
        self.basis.clear();
        self.in_basis.clear();
        self.cost.clear();
        self.pivot_row.clear();
        self.lowers.clear();
        self.values.clear();
        self.row_coefs.reserve(m_max * n);
        self.row_sense.reserve(m_max);
        self.row_rhs.reserve(m_max);
        self.a.reserve(m_max * (total_max + 1));
        self.basis.reserve(m_max);
        self.in_basis.reserve(total_max);
        self.cost.reserve(total_max);
        self.pivot_row.reserve(total_max + 1);
        self.lowers.reserve(n);
        self.values.reserve(n);
    }

    /// The variable assignment of the last [`Status::Optimal`] solve, in
    /// the original variable space.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Solves the LP relaxation of `problem`, allocating fresh storage.
///
/// Returns [`Status::Optimal`], [`Status::Infeasible`] or
/// [`Status::Unbounded`]; the values vector is in the original (unshifted)
/// variable space.
pub fn solve_lp(problem: &Problem) -> Result<Solution, SolverError> {
    let mut scratch = LpScratch::new();
    let outcome = solve_lp_scratch(problem, None, &mut scratch)?;
    Ok(Solution {
        status: outcome.status,
        objective: outcome.objective,
        values: if outcome.status == Status::Optimal {
            scratch.values.clone()
        } else {
            Vec::new()
        },
    })
}

/// Solves the LP relaxation using caller-owned scratch storage.
///
/// `bounds` optionally overrides the per-variable `(lowers, uppers)`
/// (branch-and-bound node bounds) without mutating or cloning the
/// problem; `None` uses the problem's own bounds. An override with an
/// empty domain (`lower > upper`) reports [`Status::Infeasible`].
pub fn solve_lp_scratch(
    problem: &Problem,
    bounds: Option<(&[f64], &[f64])>,
    scratch: &mut LpScratch,
) -> Result<LpOutcome, SolverError> {
    problem.validate()?;
    let n = problem.num_vars();

    let infeasible = Ok(LpOutcome {
        status: Status::Infeasible,
        objective: 0.0,
    });

    scratch.lowers.clear();
    match bounds {
        Some((lo, hi)) => {
            debug_assert_eq!(lo.len(), n);
            debug_assert_eq!(hi.len(), n);
            if lo.iter().zip(hi).any(|(l, u)| l > u) {
                return infeasible;
            }
            scratch.lowers.extend_from_slice(lo);
        }
        None => scratch
            .lowers
            .extend(problem.variables().iter().map(|v| v.lower)),
    }

    // Build rows over the shifted variables y = x - l >= 0, normalizing
    // rhs >= 0 as we go.
    scratch.row_coefs.clear();
    scratch.row_sense.clear();
    scratch.row_rhs.clear();
    for c in problem.constraints() {
        let base = scratch.row_coefs.len();
        scratch.row_coefs.resize(base + n, 0.0);
        let coefs = &mut scratch.row_coefs[base..];
        let mut shift = 0.0;
        for &(id, coef) in &c.terms {
            coefs[id.0] += coef;
            shift += coef * scratch.lowers[id.0];
        }
        let mut rhs = c.rhs - shift;
        let mut sense = c.sense;
        if rhs < 0.0 {
            for v in coefs.iter_mut() {
                *v = -*v;
            }
            rhs = -rhs;
            sense = match sense {
                Sense::Le => Sense::Ge,
                Sense::Ge => Sense::Le,
                Sense::Eq => Sense::Eq,
            };
        }
        scratch.row_sense.push(sense);
        scratch.row_rhs.push(rhs);
    }
    // Finite upper bounds become explicit rows y_j <= u_j - l_j.
    for j in 0..n {
        let upper = match bounds {
            Some((_, hi)) => hi[j],
            None => problem.variables()[j].upper,
        };
        if upper.is_finite() {
            let base = scratch.row_coefs.len();
            scratch.row_coefs.resize(base + n, 0.0);
            // The row bound is nonnegative (domains were checked above),
            // so no normalization is needed.
            scratch.row_coefs[base + j] = 1.0;
            scratch.row_sense.push(Sense::Le);
            scratch.row_rhs.push(upper - scratch.lowers[j]);
        }
    }

    let m = scratch.row_rhs.len();
    // Column layout: [structural n][slack/surplus][artificial][rhs].
    let mut num_slack = 0usize;
    let mut num_art = 0usize;
    for sense in &scratch.row_sense {
        match sense {
            Sense::Le => num_slack += 1,
            Sense::Ge => {
                num_slack += 1;
                num_art += 1;
            }
            Sense::Eq => num_art += 1,
        }
    }
    let total = n + num_slack + num_art;
    let stride = total + 1;
    let art_start = n + num_slack;

    scratch.a.clear();
    scratch.a.resize(m * stride, 0.0);
    scratch.basis.clear();
    scratch.basis.resize(m, 0);
    scratch.in_basis.clear();
    scratch.in_basis.resize(total, false);
    scratch.pivot_row.clear();
    scratch.pivot_row.resize(stride, 0.0);

    let mut slack_idx = n;
    let mut art_idx = art_start;
    for i in 0..m {
        let row = &mut scratch.a[i * stride..(i + 1) * stride];
        row[..n].copy_from_slice(&scratch.row_coefs[i * n..(i + 1) * n]);
        row[total] = scratch.row_rhs[i];
        match scratch.row_sense[i] {
            Sense::Le => {
                row[slack_idx] = 1.0;
                scratch.basis[i] = slack_idx;
                slack_idx += 1;
            }
            Sense::Ge => {
                row[slack_idx] = -1.0;
                slack_idx += 1;
                row[art_idx] = 1.0;
                scratch.basis[i] = art_idx;
                art_idx += 1;
            }
            Sense::Eq => {
                row[art_idx] = 1.0;
                scratch.basis[i] = art_idx;
                art_idx += 1;
            }
        }
    }
    for &b in &scratch.basis {
        scratch.in_basis[b] = true;
    }

    // Phase 1: minimize the sum of artificial variables.
    if num_art > 0 {
        scratch.cost.clear();
        scratch.cost.resize(total, 0.0);
        for c in &mut scratch.cost[art_start..total] {
            *c = 1.0;
        }
        let status = run_simplex(
            &mut scratch.a,
            stride,
            &mut scratch.basis,
            &mut scratch.in_basis,
            &scratch.cost,
            total,
            art_start,
            &mut scratch.pivot_row,
        );
        if status == InnerStatus::Unbounded {
            // Phase 1 is bounded below by 0; this cannot happen on a sound
            // tableau, treat as infeasible defensively.
            return infeasible;
        }
        let phase1_obj: f64 = scratch
            .basis
            .iter()
            .enumerate()
            .filter(|(_, &bj)| bj >= art_start)
            .map(|(i, _)| scratch.a[i * stride + total])
            .sum();
        if phase1_obj > FEAS_TOL {
            return infeasible;
        }
        // Drive remaining (degenerate) artificials out of the basis.
        for i in 0..m {
            if scratch.basis[i] >= art_start {
                if let Some(col) = (0..art_start).find(|&j| scratch.a[i * stride + j].abs() > EPS) {
                    pivot(
                        &mut scratch.a,
                        stride,
                        &mut scratch.basis,
                        &mut scratch.in_basis,
                        i,
                        col,
                        total,
                        &mut scratch.pivot_row,
                    );
                }
                // If no pivot column exists the row is all-zero: harmless.
            }
        }
    }

    // Phase 2: original objective over shifted variables (constant term
    // from the shift is re-added at the end via objective_value).
    scratch.cost.clear();
    scratch.cost.resize(total, 0.0);
    scratch.cost[..n].copy_from_slice(problem.objective());
    let status = run_simplex(
        &mut scratch.a,
        stride,
        &mut scratch.basis,
        &mut scratch.in_basis,
        &scratch.cost,
        total,
        art_start,
        &mut scratch.pivot_row,
    );
    if status == InnerStatus::Unbounded {
        return Ok(LpOutcome {
            status: Status::Unbounded,
            objective: f64::NEG_INFINITY,
        });
    }

    scratch.values.clear();
    scratch.values.extend_from_slice(&scratch.lowers);
    for (i, &bj) in scratch.basis.iter().enumerate() {
        if bj < n {
            scratch.values[bj] += scratch.a[i * stride + total];
        }
    }
    let objective = problem.objective_value(&scratch.values);
    Ok(LpOutcome {
        status: Status::Optimal,
        objective,
    })
}

#[derive(Debug, PartialEq, Eq)]
enum InnerStatus {
    Optimal,
    Unbounded,
}

/// Runs primal simplex on the flat tableau; columns from `forbid`
/// (artificials in phase 2) are never allowed to enter.
#[allow(clippy::too_many_arguments)]
fn run_simplex(
    a: &mut [f64],
    stride: usize,
    basis: &mut [usize],
    in_basis: &mut [bool],
    cost: &[f64],
    total: usize,
    forbid: usize,
    pivot_row: &mut [f64],
) -> InnerStatus {
    let m = basis.len();
    let max_dantzig = 20 * (m + total) + 200;
    let max_iters = 200 * (m + total) + 2000;

    for iter in 0..max_iters {
        // Reduced costs: r_j = c_j - c_B B^-1 A_j, computed directly from
        // the maintained tableau.
        let mut entering: Option<usize> = None;
        let mut best = -EPS;
        for j in 0..total {
            // Artificial columns never (re-)enter: they start basic in
            // phase 1 and are forbidden in phase 2.
            if j >= forbid || in_basis[j] {
                continue;
            }
            let mut rj = cost[j];
            for (i, &bi) in basis.iter().enumerate() {
                let cb = cost[bi];
                if cb != 0.0 {
                    rj -= cb * a[i * stride + j];
                }
            }
            if iter < max_dantzig {
                if rj < best {
                    best = rj;
                    entering = Some(j);
                }
            } else if rj < -EPS {
                // Bland: first improving column.
                entering = Some(j);
                break;
            }
        }
        let Some(e) = entering else {
            return InnerStatus::Optimal;
        };

        // Ratio test (Bland ties by smallest basis index).
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if a[i * stride + e] > EPS {
                let ratio = a[i * stride + total] / a[i * stride + e];
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leave.is_some_and(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(l) = leave else {
            return InnerStatus::Unbounded;
        };
        pivot(a, stride, basis, in_basis, l, e, total, pivot_row);
    }
    // Iteration budget exhausted: report the current (feasible) point as
    // optimal-so-far; on these problem sizes this path is unreachable.
    InnerStatus::Optimal
}

#[allow(clippy::too_many_arguments)]
fn pivot(
    a: &mut [f64],
    stride: usize,
    basis: &mut [usize],
    in_basis: &mut [bool],
    row: usize,
    col: usize,
    total: usize,
    pivot_row: &mut [f64],
) {
    let p = a[row * stride + col];
    for v in &mut a[row * stride..row * stride + total + 1] {
        *v /= p;
    }
    // Copy the pivot row out so the eliminations below can read it while
    // mutating the other rows of the flat buffer.
    pivot_row[..=total].copy_from_slice(&a[row * stride..row * stride + total + 1]);
    let m = basis.len();
    for i in 0..m {
        if i == row {
            continue;
        }
        let f = a[i * stride + col];
        if f.abs() > 0.0 {
            for (v, &pv) in a[i * stride..i * stride + total + 1]
                .iter_mut()
                .zip(&pivot_row[..=total])
            {
                *v -= f * pv;
            }
        }
    }
    in_basis[basis[row]] = false;
    in_basis[col] = true;
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, Sense};

    #[test]
    fn solves_textbook_lp() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 => (2, 6), 36.
        let mut p = Problem::new();
        let x = p.add_var(-3.0, 0.0, f64::INFINITY);
        let y = p.add_var(-5.0, 0.0, f64::INFINITY);
        p.add_constraint(vec![(x, 1.0)], Sense::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective + 36.0).abs() < 1e-6);
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn handles_ge_and_eq_constraints() {
        // min x + y  s.t. x + y >= 3, x - y == 1 => (2, 1), 3.
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, f64::INFINITY);
        let y = p.add_var(1.0, 0.0, f64::INFINITY);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Sense::Eq, 1.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(
            (sol.objective - 3.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasibility() {
        let mut p = Problem::new();
        let x = p.add_var(1.0, 0.0, 1.0);
        p.add_constraint(vec![(x, 1.0)], Sense::Ge, 5.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut p = Problem::new();
        let x = p.add_var(-1.0, 0.0, f64::INFINITY);
        p.add_constraint(vec![(x, -1.0)], Sense::Le, 0.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Unbounded);
    }

    #[test]
    fn respects_variable_bounds() {
        // min -x with x in [0, 7].
        let mut p = Problem::new();
        let _x = p.add_var(-1.0, 0.0, 7.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.values[0] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn respects_nonzero_lower_bounds() {
        // min x + y with x >= 2, y in [3, 10], x + y >= 6 => (3, 3) or (2, 4): obj 6.
        let mut p = Problem::new();
        let x = p.add_var(1.0, 2.0, f64::INFINITY);
        let y = p.add_var(1.0, 3.0, 10.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 6.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 6.0).abs() < 1e-6);
        assert!(sol.values[0] >= 2.0 - 1e-9);
        assert!(sol.values[1] >= 3.0 - 1e-9);
    }

    #[test]
    fn degenerate_problems_terminate() {
        // Classic degenerate LP; Bland fallback must prevent cycling.
        let mut p = Problem::new();
        let x1 = p.add_var(-0.75, 0.0, f64::INFINITY);
        let x2 = p.add_var(150.0, 0.0, f64::INFINITY);
        let x3 = p.add_var(-0.02, 0.0, f64::INFINITY);
        let x4 = p.add_var(6.0, 0.0, f64::INFINITY);
        p.add_constraint(
            vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(
            vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(vec![(x3, 1.0)], Sense::Le, 1.0);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(
            (sol.objective + 0.05).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
    }

    #[test]
    fn lp_relaxation_of_binary_problem() {
        // min -(x + y) with x, y binary and x + y <= 1.5 relaxes to 1.5.
        let mut p = Problem::new();
        let x = p.add_bin_var(-1.0);
        let y = p.add_bin_var(-1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 1.5);
        let sol = solve_lp(&p).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective + 1.5).abs() < 1e-6);
    }

    #[test]
    fn bound_override_matches_modified_problem() {
        // Overriding bounds through the scratch API must agree with
        // baking the same bounds into the problem (the branch-and-bound
        // node contract).
        let mut p = Problem::new();
        let x = p.add_int_var(-1.0, 0.0, 10.0);
        let y = p.add_var(-1.0, 0.0, 10.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 7.5);

        let mut q = p.clone();
        q.set_bounds(x, 0.0, 3.0);
        let expect = solve_lp(&q).unwrap();

        let mut scratch = LpScratch::new();
        let lowers = [0.0, 0.0];
        let uppers = [3.0, 10.0];
        let outcome = solve_lp_scratch(&p, Some((&lowers, &uppers)), &mut scratch).unwrap();
        assert_eq!(outcome.status, Status::Optimal);
        assert!((outcome.objective - expect.objective).abs() < 1e-9);
        assert_eq!(scratch.values(), expect.values.as_slice());
    }

    #[test]
    fn scratch_reuse_is_consistent_across_solves() {
        // The same scratch must give identical answers when reused for
        // different problems back to back.
        let mut scratch = LpScratch::new();

        let mut p1 = Problem::new();
        let x = p1.add_var(-3.0, 0.0, f64::INFINITY);
        let y = p1.add_var(-5.0, 0.0, f64::INFINITY);
        p1.add_constraint(vec![(x, 1.0)], Sense::Le, 4.0);
        p1.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0);
        p1.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);

        let mut p2 = Problem::new();
        let a = p2.add_var(1.0, 0.0, f64::INFINITY);
        let b = p2.add_var(1.0, 0.0, f64::INFINITY);
        p2.add_constraint(vec![(a, 1.0), (b, 1.0)], Sense::Ge, 3.0);
        p2.add_constraint(vec![(a, 1.0), (b, -1.0)], Sense::Eq, 1.0);

        for _ in 0..3 {
            let o1 = solve_lp_scratch(&p1, None, &mut scratch).unwrap();
            assert!((o1.objective + 36.0).abs() < 1e-6);
            let o2 = solve_lp_scratch(&p2, None, &mut scratch).unwrap();
            assert!((o2.objective - 3.0).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_domain_override_is_infeasible() {
        let mut p = Problem::new();
        let _x = p.add_var(1.0, 0.0, 5.0);
        let mut scratch = LpScratch::new();
        let outcome = solve_lp_scratch(&p, Some((&[3.0], &[2.0])), &mut scratch).unwrap();
        assert_eq!(outcome.status, Status::Infeasible);
    }
}
