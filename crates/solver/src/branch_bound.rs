//! Depth-first branch-and-bound MILP solver.

// lint: allow(wall-clock-in-core) — the deadline is a hard-stop guard
// against pathological MILPs, not a result input: `max_nodes` is the
// deterministic bound, and any truncation (by either limit) surfaces as
// `Status::TimedOut` so callers can tell a timed-out solve from an
// optimal one.

use std::time::{Duration, Instant};

use crate::model::{Problem, Solution, SolverError, Status, VarId};
use crate::simplex::solve_lp;

const INT_TOL: f64 = 1e-6;

/// Options controlling a MILP solve.
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Wall-clock budget; on expiry the best incumbent is returned with
    /// [`Status::TimedOut`] (Algorithm 1's greedy fallback then kicks in at
    /// the scheduler level).
    pub timeout: Duration,
    /// Hard cap on explored nodes (second safety valve).
    pub max_nodes: usize,
    /// Optional warm-start assignment; if feasible it seeds the incumbent,
    /// letting the tree prune immediately.
    pub warm_start: Option<Vec<f64>>,
    /// Stop as soon as an incumbent is at least this close to the LP
    /// bound (absolute gap); `0.0` demands proven optimality.
    pub absolute_gap: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(10),
            max_nodes: 200_000,
            warm_start: None,
            absolute_gap: 1e-6,
        }
    }
}

/// Solves a mixed-integer linear program by branch-and-bound.
///
/// Returns the best integer-feasible solution found. `status` is
/// [`Status::Optimal`] when the tree was exhausted (or the gap target met),
/// [`Status::TimedOut`] when a feasible incumbent exists but the deadline or
/// node cap expired first, and [`Status::Infeasible`] when no feasible
/// point was found.
pub fn solve_milp(problem: &Problem, options: &MilpOptions) -> Result<Solution, SolverError> {
    let _span = lorafusion_trace::span!(
        "solver.milp",
        vars = problem.num_vars(),
        constraints = problem.num_constraints()
    );
    problem.validate()?;
    let deadline = Instant::now() + options.timeout;

    let mut incumbent: Option<Solution> = None;
    if let Some(ws) = &options.warm_start {
        if problem.is_feasible(ws, 1e-6) {
            incumbent = Some(Solution {
                status: Status::TimedOut,
                objective: problem.objective_value(ws),
                values: ws.clone(),
            });
        }
    }

    // Root relaxation.
    let root = solve_lp(problem)?;
    match root.status {
        Status::Infeasible => {
            return Ok(incumbent.unwrap_or(Solution {
                status: Status::Infeasible,
                objective: 0.0,
                values: vec![],
            }))
        }
        Status::Unbounded => {
            // With a feasible incumbent the MILP itself may still be
            // bounded, but for scheduler models (all bounded) this is a
            // modeling error; surface it as unbounded.
            return Ok(Solution {
                status: Status::Unbounded,
                objective: f64::NEG_INFINITY,
                values: vec![],
            });
        }
        _ => {}
    }

    // DFS over bound adjustments. Each node stores the modified bounds.
    struct Node {
        bounds: Vec<(usize, f64, f64)>,
        lp_bound: f64,
    }
    let mut stack = vec![Node {
        bounds: Vec::new(),
        lp_bound: root.objective,
    }];
    let mut explored = 0usize;
    let mut timed_out = false;

    while let Some(node) = stack.pop() {
        if Instant::now() >= deadline || explored >= options.max_nodes {
            timed_out = true;
            break;
        }
        explored += 1;
        {
            use std::sync::OnceLock;
            static NODES: OnceLock<lorafusion_trace::metrics::Counter> = OnceLock::new();
            NODES
                .get_or_init(|| lorafusion_trace::metrics::counter("solver.bb.nodes"))
                .incr();
        }

        // Prune by bound.
        if let Some(inc) = &incumbent {
            if node.lp_bound >= inc.objective - options.absolute_gap {
                continue;
            }
        }

        // Apply bound changes and solve the relaxation.
        let mut local = problem.clone();
        for &(var, lo, hi) in &node.bounds {
            let v = local.variable(VarId(var));
            local.set_bounds(VarId(var), v.lower.max(lo), v.upper.min(hi));
            let v = local.variable(VarId(var));
            if v.lower > v.upper {
                // Empty domain: prune.
                continue;
            }
        }
        if local.variables().iter().any(|v| v.lower > v.upper) {
            continue;
        }
        let relax = solve_lp(&local)?;
        if relax.status != Status::Optimal {
            continue;
        }
        if let Some(inc) = &incumbent {
            if relax.objective >= inc.objective - options.absolute_gap {
                continue;
            }
        }

        // Find the most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None;
        let mut best_frac = INT_TOL;
        for (j, v) in problem.variables().iter().enumerate() {
            if v.integer {
                let x = relax.values[j];
                let frac = (x - x.round()).abs();
                if frac > best_frac {
                    best_frac = frac;
                    branch_var = Some((j, x));
                }
            }
        }

        match branch_var {
            None => {
                // Integer feasible: round off numerical fuzz and accept.
                let mut values = relax.values.clone();
                for (j, v) in problem.variables().iter().enumerate() {
                    if v.integer {
                        values[j] = values[j].round();
                    }
                }
                let objective = problem.objective_value(&values);
                let better = incumbent
                    .as_ref()
                    .is_none_or(|inc| objective < inc.objective);
                if better && problem.is_feasible(&values, 1e-5) {
                    incumbent = Some(Solution {
                        status: Status::Optimal,
                        objective,
                        values,
                    });
                }
            }
            Some((j, x)) => {
                // Branch: explore the side closer to the LP value first
                // (pushed last so it pops first).
                let floor = x.floor();
                let mut down = node.bounds.clone();
                down.push((j, f64::NEG_INFINITY, floor));
                let mut up = node.bounds.clone();
                up.push((j, floor + 1.0, f64::INFINITY));
                let down_node = Node {
                    bounds: down,
                    lp_bound: relax.objective,
                };
                let up_node = Node {
                    bounds: up,
                    lp_bound: relax.objective,
                };
                if x - floor > 0.5 {
                    stack.push(down_node);
                    stack.push(up_node);
                } else {
                    stack.push(up_node);
                    stack.push(down_node);
                }
            }
        }
    }

    Ok(match incumbent {
        Some(mut sol) => {
            sol.status = if timed_out {
                Status::TimedOut
            } else {
                Status::Optimal
            };
            sol
        }
        None => {
            if timed_out {
                Solution {
                    status: Status::TimedOut,
                    objective: f64::INFINITY,
                    values: vec![],
                }
            } else {
                Solution {
                    status: Status::Infeasible,
                    objective: 0.0,
                    values: vec![],
                }
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Sense;

    #[test]
    fn solves_knapsack_exactly() {
        // max 10a + 13b + 7c with weights 3,4,2 and capacity 6.
        // Optimal: b + c = 20 (weight 6).
        let mut p = Problem::new();
        let a = p.add_bin_var(-10.0);
        let b = p.add_bin_var(-13.0);
        let c = p.add_bin_var(-7.0);
        p.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Sense::Le, 6.0);
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(
            (sol.objective + 20.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert_eq!(sol.values[0].round() as i64, 0);
        assert_eq!(sol.values[1].round() as i64, 1);
        assert_eq!(sol.values[2].round() as i64, 1);
    }

    #[test]
    fn integer_rounding_matters() {
        // LP relaxation gives x = 1.5; MILP must give x = 1.
        let mut p = Problem::new();
        let x = p.add_int_var(-1.0, 0.0, 10.0);
        p.add_constraint(vec![(x, 2.0)], Sense::Le, 3.0);
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.values[0].round() as i64, 1);
    }

    #[test]
    fn mixed_integer_keeps_continuous_fractional() {
        // min -(x + y), x integer <= 2.5 per constraint, y continuous <= 0.5.
        let mut p = Problem::new();
        let x = p.add_int_var(-1.0, 0.0, 10.0);
        let _y = p.add_var(-1.0, 0.0, 0.5);
        p.add_constraint(vec![(x, 1.0)], Sense::Le, 2.5);
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.values[0].round() as i64, 2);
        assert!((sol.values[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn infeasible_milp_is_reported() {
        let mut p = Problem::new();
        let x = p.add_bin_var(1.0);
        let y = p.add_bin_var(1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Infeasible);
    }

    #[test]
    fn warm_start_survives_timeout() {
        // A zero-time budget returns the warm start unchanged.
        let mut p = Problem::new();
        let x = p.add_bin_var(-1.0);
        let y = p.add_bin_var(-1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        let options = MilpOptions {
            timeout: Duration::from_millis(0),
            warm_start: Some(vec![1.0, 0.0]),
            ..MilpOptions::default()
        };
        let sol = solve_milp(&p, &options).unwrap();
        assert_eq!(sol.status, Status::TimedOut);
        assert!((sol.objective + 1.0).abs() < 1e-9);
    }

    #[test]
    fn bin_packing_matches_brute_force() {
        // Pack items into bins of capacity 10, minimizing used bins.
        let items = [6.0f64, 5.0, 4.0, 3.0, 2.0];
        let bins = 3usize;
        let mut p = Problem::new();
        // x[i][b] = item i in bin b; z[b] = bin b used.
        let x: Vec<Vec<_>> = items
            .iter()
            .map(|_| (0..bins).map(|_| p.add_bin_var(0.0)).collect())
            .collect();
        let z: Vec<_> = (0..bins).map(|_| p.add_bin_var(1.0)).collect();
        for xi in &x {
            p.add_constraint(xi.iter().map(|&v| (v, 1.0)).collect(), Sense::Eq, 1.0);
        }
        for b in 0..bins {
            let mut terms: Vec<_> = items
                .iter()
                .enumerate()
                .map(|(i, &w)| (x[i][b], w))
                .collect();
            terms.push((z[b], -10.0));
            p.add_constraint(terms, Sense::Le, 0.0);
        }
        // Symmetry break: used bins are contiguous.
        for b in 0..bins - 1 {
            p.add_constraint(vec![(z[b], 1.0), (z[b + 1], -1.0)], Sense::Ge, 0.0);
        }
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        // Total weight 20, capacity 10: 2 bins are necessary and achievable
        // (6+4, 5+3+2).
        assert_eq!(sol.objective.round() as i64, 2);
    }

    #[test]
    fn equality_constrained_assignment() {
        // Assign 2 jobs to 2 machines, each machine exactly one job,
        // minimize cost matrix [[4, 2], [3, 5]] => 2 + 3 = 5.
        let mut p = Problem::new();
        let costs = [[4.0, 2.0], [3.0, 5.0]];
        let mut vars = [[VarId(0); 2]; 2];
        for (i, row) in vars.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = p.add_bin_var(costs[i][j]);
            }
        }
        for (i, row) in vars.iter().enumerate() {
            p.add_constraint(vec![(row[0], 1.0), (row[1], 1.0)], Sense::Eq, 1.0);
            p.add_constraint(vec![(vars[0][i], 1.0), (vars[1][i], 1.0)], Sense::Eq, 1.0);
        }
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }
}
