//! Depth-first branch-and-bound MILP solver.

// lint: allow(wall-clock-in-core) — the deadline is a hard-stop guard
// against pathological MILPs, not a result input: `max_nodes` is the
// deterministic bound, and any truncation (by either limit) surfaces as
// `Status::TimedOut` so callers can tell a timed-out solve from an
// optimal one.

use std::time::{Duration, Instant};

use crate::model::{Problem, Solution, SolverError, Status};
use crate::simplex::{solve_lp_scratch, LpScratch};

const INT_TOL: f64 = 1e-6;

/// Options controlling a MILP solve.
#[derive(Debug, Clone)]
pub struct MilpOptions {
    /// Wall-clock budget; on expiry the best incumbent is returned with
    /// [`Status::TimedOut`] (Algorithm 1's greedy fallback then kicks in at
    /// the scheduler level).
    pub timeout: Duration,
    /// Hard cap on explored nodes (second safety valve). Unlike the
    /// wall-clock timeout this limit is deterministic, so callers that
    /// need replayable results (the online scheduler) set a generous
    /// timeout and rely on `max_nodes` as the binding budget.
    pub max_nodes: usize,
    /// Optional warm-start assignment; if feasible it seeds the incumbent,
    /// letting the tree prune immediately.
    pub warm_start: Option<Vec<f64>>,
    /// Stop as soon as an incumbent is at least this close to the LP
    /// bound (absolute gap); `0.0` demands proven optimality.
    pub absolute_gap: f64,
}

impl Default for MilpOptions {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(10),
            max_nodes: 200_000,
            warm_start: None,
            absolute_gap: 1e-6,
        }
    }
}

/// One branch-and-bound node: a single bound tightening on top of the
/// parent's bounds. The full node bounds are reconstructed by walking the
/// parent chain, so pushing a node costs one fixed-size struct instead of
/// a cloned bounds vector (or, as before, a cloned [`Problem`]).
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Index of the parent node in [`MilpScratch::nodes`];
    /// `usize::MAX` for the root.
    parent: usize,
    /// Variable whose bound this node tightens (`usize::MAX` at the root).
    var: usize,
    /// New lower bound (`-inf` when only the upper moved).
    lower: f64,
    /// New upper bound (`+inf` when only the lower moved).
    upper: f64,
    /// LP bound inherited from the parent relaxation.
    lp_bound: f64,
}

/// Reusable working storage for [`solve_milp_scratch`].
///
/// Holds the LP scratch (flat tableau), the node arena, the DFS stack,
/// the per-node bound vectors and the incumbent buffer. Once warmed on a
/// problem, repeat solves perform a small constant number of heap
/// allocations (the returned [`Solution::values`] vector) regardless of
/// how many nodes the tree explores — `solver/tests/zero_alloc.rs`
/// enforces this with a counting global allocator.
#[derive(Debug, Default)]
pub struct MilpScratch {
    lp: LpScratch,
    /// Node arena; nodes reference parents by index.
    nodes: Vec<Node>,
    /// DFS stack of node indices.
    stack: Vec<usize>,
    /// Effective bounds of the node being expanded.
    lowers: Vec<f64>,
    uppers: Vec<f64>,
    /// Best integer-feasible assignment found so far.
    incumbent: Vec<f64>,
    /// Candidate assignment being integrality-checked.
    candidate: Vec<f64>,
}

impl MilpScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Solves a mixed-integer linear program by branch-and-bound, allocating
/// fresh scratch storage.
///
/// Returns the best integer-feasible solution found. `status` is
/// [`Status::Optimal`] when the tree was exhausted (or the gap target met),
/// [`Status::TimedOut`] when a feasible incumbent exists but the deadline or
/// node cap expired first, and [`Status::Infeasible`] when no feasible
/// point was found.
pub fn solve_milp(problem: &Problem, options: &MilpOptions) -> Result<Solution, SolverError> {
    let mut scratch = MilpScratch::new();
    solve_milp_scratch(problem, options, &mut scratch)
}

/// Solves a MILP reusing caller-owned scratch storage across solves.
///
/// Identical results to [`solve_milp`]; repeated solves on a warmed
/// scratch do not reallocate the tableau or node storage, which is what
/// makes per-event warm-started re-solves cheap in the online scheduler.
pub fn solve_milp_scratch(
    problem: &Problem,
    options: &MilpOptions,
    scratch: &mut MilpScratch,
) -> Result<Solution, SolverError> {
    let _span = lorafusion_trace::span!(
        "solver.milp",
        vars = problem.num_vars(),
        constraints = problem.num_constraints()
    );
    problem.validate()?;
    let deadline = Instant::now() + options.timeout;
    let n = problem.num_vars();

    let MilpScratch {
        lp,
        nodes,
        stack,
        lowers,
        uppers,
        incumbent,
        candidate,
    } = scratch;
    lp.reserve_for(problem);

    // Incumbent state. `incumbent_from_warm` distinguishes prunes earned
    // by the caller-provided warm start from prunes against incumbents the
    // tree found itself (the `solver.bb.warm_start_prunes` counter).
    let mut incumbent_obj = f64::INFINITY;
    let mut have_incumbent = false;
    let mut incumbent_from_warm = false;
    incumbent.clear();
    if let Some(ws) = &options.warm_start {
        if problem.is_feasible(ws, 1e-6) {
            incumbent.extend_from_slice(ws);
            incumbent_obj = problem.objective_value(ws);
            have_incumbent = true;
            incumbent_from_warm = true;
        }
    }

    // Root relaxation.
    let root = solve_lp_scratch(problem, None, lp)?;
    match root.status {
        Status::Infeasible => {
            return Ok(if have_incumbent {
                Solution {
                    status: Status::TimedOut,
                    objective: incumbent_obj,
                    values: incumbent.clone(),
                }
            } else {
                Solution {
                    status: Status::Infeasible,
                    objective: 0.0,
                    values: vec![],
                }
            })
        }
        Status::Unbounded => {
            // With a feasible incumbent the MILP itself may still be
            // bounded, but for scheduler models (all bounded) this is a
            // modeling error; surface it as unbounded.
            return Ok(Solution {
                status: Status::Unbounded,
                objective: f64::NEG_INFINITY,
                values: vec![],
            });
        }
        _ => {}
    }

    let (nodes_counter, warm_prunes_counter, warm_nodes_counter, cold_nodes_counter) = {
        use std::sync::OnceLock;
        type C = lorafusion_trace::metrics::Counter;
        static CELLS: OnceLock<(C, C, C, C)> = OnceLock::new();
        *CELLS.get_or_init(|| {
            let start = |v| lorafusion_trace::label::Scope::new(&[("start", v)]);
            (
                lorafusion_trace::metrics::counter("solver.bb.nodes"),
                lorafusion_trace::metrics::counter("solver.bb.warm_start_prunes"),
                start("warm").counter("solver.bb.nodes"),
                start("cold").counter("solver.bb.nodes"),
            )
        })
    };

    nodes.clear();
    stack.clear();
    nodes.push(Node {
        parent: usize::MAX,
        var: usize::MAX,
        lower: f64::NEG_INFINITY,
        upper: f64::INFINITY,
        lp_bound: root.objective,
    });
    stack.push(0);
    // `incumbent_from_warm` flips once a better cold incumbent is found;
    // the per-start node attribution goes by how the solve *started*.
    let started_warm = incumbent_from_warm;
    let mut explored = 0usize;
    let mut timed_out = false;

    while let Some(node_idx) = stack.pop() {
        if Instant::now() >= deadline || explored >= options.max_nodes {
            timed_out = true;
            break;
        }
        explored += 1;
        nodes_counter.incr();

        // Prune by the bound inherited from the parent relaxation.
        if have_incumbent && nodes[node_idx].lp_bound >= incumbent_obj - options.absolute_gap {
            if incumbent_from_warm {
                warm_prunes_counter.incr();
            }
            continue;
        }

        // Reconstruct the node's bounds: base bounds, then every
        // tightening on the path back to the root (max/min are
        // order-independent).
        lowers.clear();
        uppers.clear();
        for v in problem.variables() {
            lowers.push(v.lower);
            uppers.push(v.upper);
        }
        let mut cur = node_idx;
        while nodes[cur].parent != usize::MAX {
            let nd = nodes[cur];
            lowers[nd.var] = lowers[nd.var].max(nd.lower);
            uppers[nd.var] = uppers[nd.var].min(nd.upper);
            cur = nd.parent;
        }
        if lowers.iter().zip(uppers.iter()).any(|(l, u)| l > u) {
            // Empty domain: prune.
            continue;
        }

        let relax = solve_lp_scratch(problem, Some((lowers, uppers)), lp)?;
        if relax.status != Status::Optimal {
            continue;
        }
        if have_incumbent && relax.objective >= incumbent_obj - options.absolute_gap {
            if incumbent_from_warm {
                warm_prunes_counter.incr();
            }
            continue;
        }

        // Find the most fractional integer variable.
        let mut branch_var: Option<(usize, f64)> = None;
        let mut best_frac = INT_TOL;
        for (j, v) in problem.variables().iter().enumerate() {
            if v.integer {
                let x = lp.values()[j];
                let frac = (x - x.round()).abs();
                if frac > best_frac {
                    best_frac = frac;
                    branch_var = Some((j, x));
                }
            }
        }

        match branch_var {
            None => {
                // Integer feasible: round off numerical fuzz and accept.
                candidate.clear();
                candidate.extend_from_slice(lp.values());
                for (j, v) in problem.variables().iter().enumerate() {
                    if v.integer {
                        candidate[j] = candidate[j].round();
                    }
                }
                let objective = problem.objective_value(candidate);
                let better = !have_incumbent || objective < incumbent_obj;
                if better && problem.is_feasible(candidate, 1e-5) {
                    incumbent.clear();
                    incumbent.extend_from_slice(candidate);
                    incumbent_obj = objective;
                    have_incumbent = true;
                    incumbent_from_warm = false;
                }
            }
            Some((j, x)) => {
                // Branch: explore the side closer to the LP value first
                // (pushed last so it pops first).
                let floor = x.floor();
                let down = Node {
                    parent: node_idx,
                    var: j,
                    lower: f64::NEG_INFINITY,
                    upper: floor,
                    lp_bound: relax.objective,
                };
                let up = Node {
                    parent: node_idx,
                    var: j,
                    lower: floor + 1.0,
                    upper: f64::INFINITY,
                    lp_bound: relax.objective,
                };
                let down_idx = nodes.len();
                nodes.push(down);
                let up_idx = nodes.len();
                nodes.push(up);
                if x - floor > 0.5 {
                    stack.push(down_idx);
                    stack.push(up_idx);
                } else {
                    stack.push(up_idx);
                    stack.push(down_idx);
                }
            }
        }
    }

    if started_warm {
        warm_nodes_counter.add(explored as u64);
    } else {
        cold_nodes_counter.add(explored as u64);
    }

    debug_assert!(incumbent.is_empty() || incumbent.len() == n);
    Ok(if have_incumbent {
        Solution {
            status: if timed_out {
                Status::TimedOut
            } else {
                Status::Optimal
            },
            objective: incumbent_obj,
            values: incumbent.clone(),
        }
    } else if timed_out {
        Solution {
            status: Status::TimedOut,
            objective: f64::INFINITY,
            values: vec![],
        }
    } else {
        Solution {
            status: Status::Infeasible,
            objective: 0.0,
            values: vec![],
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Sense, VarId};

    #[test]
    fn solves_knapsack_exactly() {
        // max 10a + 13b + 7c with weights 3,4,2 and capacity 6.
        // Optimal: b + c = 20 (weight 6).
        let mut p = Problem::new();
        let a = p.add_bin_var(-10.0);
        let b = p.add_bin_var(-13.0);
        let c = p.add_bin_var(-7.0);
        p.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Sense::Le, 6.0);
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!(
            (sol.objective + 20.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert_eq!(sol.values[0].round() as i64, 0);
        assert_eq!(sol.values[1].round() as i64, 1);
        assert_eq!(sol.values[2].round() as i64, 1);
    }

    #[test]
    fn integer_rounding_matters() {
        // LP relaxation gives x = 1.5; MILP must give x = 1.
        let mut p = Problem::new();
        let x = p.add_int_var(-1.0, 0.0, 10.0);
        p.add_constraint(vec![(x, 2.0)], Sense::Le, 3.0);
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.values[0].round() as i64, 1);
    }

    #[test]
    fn mixed_integer_keeps_continuous_fractional() {
        // min -(x + y), x integer <= 2.5 per constraint, y continuous <= 0.5.
        let mut p = Problem::new();
        let x = p.add_int_var(-1.0, 0.0, 10.0);
        let _y = p.add_var(-1.0, 0.0, 0.5);
        p.add_constraint(vec![(x, 1.0)], Sense::Le, 2.5);
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert_eq!(sol.values[0].round() as i64, 2);
        assert!((sol.values[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn infeasible_milp_is_reported() {
        let mut p = Problem::new();
        let x = p.add_bin_var(1.0);
        let y = p.add_bin_var(1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Infeasible);
    }

    #[test]
    fn warm_start_survives_timeout() {
        // A zero-time budget returns the warm start unchanged.
        let mut p = Problem::new();
        let x = p.add_bin_var(-1.0);
        let y = p.add_bin_var(-1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        let options = MilpOptions {
            timeout: Duration::from_millis(0),
            warm_start: Some(vec![1.0, 0.0]),
            ..MilpOptions::default()
        };
        let sol = solve_milp(&p, &options).unwrap();
        assert_eq!(sol.status, Status::TimedOut);
        assert!((sol.objective + 1.0).abs() < 1e-9);
    }

    #[test]
    fn bin_packing_matches_brute_force() {
        // Pack items into bins of capacity 10, minimizing used bins.
        let items = [6.0f64, 5.0, 4.0, 3.0, 2.0];
        let bins = 3usize;
        let mut p = Problem::new();
        // x[i][b] = item i in bin b; z[b] = bin b used.
        let x: Vec<Vec<_>> = items
            .iter()
            .map(|_| (0..bins).map(|_| p.add_bin_var(0.0)).collect())
            .collect();
        let z: Vec<_> = (0..bins).map(|_| p.add_bin_var(1.0)).collect();
        for xi in &x {
            p.add_constraint(xi.iter().map(|&v| (v, 1.0)).collect(), Sense::Eq, 1.0);
        }
        for b in 0..bins {
            let mut terms: Vec<_> = items
                .iter()
                .enumerate()
                .map(|(i, &w)| (x[i][b], w))
                .collect();
            terms.push((z[b], -10.0));
            p.add_constraint(terms, Sense::Le, 0.0);
        }
        // Symmetry break: used bins are contiguous.
        for b in 0..bins - 1 {
            p.add_constraint(vec![(z[b], 1.0), (z[b + 1], -1.0)], Sense::Ge, 0.0);
        }
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        // Total weight 20, capacity 10: 2 bins are necessary and achievable
        // (6+4, 5+3+2).
        assert_eq!(sol.objective.round() as i64, 2);
    }

    #[test]
    fn equality_constrained_assignment() {
        // Assign 2 jobs to 2 machines, each machine exactly one job,
        // minimize cost matrix [[4, 2], [3, 5]] => 2 + 3 = 5.
        let mut p = Problem::new();
        let costs = [[4.0, 2.0], [3.0, 5.0]];
        let mut vars = [[VarId(0); 2]; 2];
        for (i, row) in vars.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = p.add_bin_var(costs[i][j]);
            }
        }
        for (i, row) in vars.iter().enumerate() {
            p.add_constraint(vec![(row[0], 1.0), (row[1], 1.0)], Sense::Eq, 1.0);
            p.add_constraint(vec![(vars[0][i], 1.0), (vars[1][i], 1.0)], Sense::Eq, 1.0);
        }
        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn scratch_reuse_matches_fresh_solves() {
        // The same scratch reused across different problems must give the
        // same answers as fresh solves.
        let mut scratch = MilpScratch::new();

        let mut p1 = Problem::new();
        let a = p1.add_bin_var(-10.0);
        let b = p1.add_bin_var(-13.0);
        let c = p1.add_bin_var(-7.0);
        p1.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Sense::Le, 6.0);

        let mut p2 = Problem::new();
        let x = p2.add_int_var(-1.0, 0.0, 10.0);
        p2.add_constraint(vec![(x, 2.0)], Sense::Le, 3.0);

        for _ in 0..3 {
            let s1 = solve_milp_scratch(&p1, &MilpOptions::default(), &mut scratch).unwrap();
            assert_eq!(s1.status, Status::Optimal);
            assert!((s1.objective + 20.0).abs() < 1e-6);
            let s2 = solve_milp_scratch(&p2, &MilpOptions::default(), &mut scratch).unwrap();
            assert_eq!(s2.status, Status::Optimal);
            assert_eq!(s2.values[0].round() as i64, 1);
        }
    }

    #[test]
    fn warm_start_prunes_are_counted() {
        // Seeding the optimum as a warm start must let the tree prune
        // against it (counter strictly increases).
        let before = lorafusion_trace::metrics::counter("solver.bb.warm_start_prunes").get();
        let mut p = Problem::new();
        let a = p.add_bin_var(-10.0);
        let b = p.add_bin_var(-13.0);
        let c = p.add_bin_var(-7.0);
        p.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Sense::Le, 6.0);
        let options = MilpOptions {
            warm_start: Some(vec![0.0, 1.0, 1.0]),
            ..MilpOptions::default()
        };
        let sol = solve_milp(&p, &options).unwrap();
        assert_eq!(sol.status, Status::Optimal);
        assert!((sol.objective + 20.0).abs() < 1e-6);
        let after = lorafusion_trace::metrics::counter("solver.bb.warm_start_prunes").get();
        assert!(after > before, "warm-start prunes not counted");
    }
}
