//! From-scratch LP/MILP solver.
//!
//! The paper's scheduler (Section 5.2, Algorithm 1) packs samples into
//! microbatches by solving two small mixed-integer linear programs per
//! global batch, with a wall-clock timeout and a greedy fallback. The
//! original system uses an off-the-shelf solver; this crate rebuilds the
//! required machinery from scratch:
//!
//! * [`model`] — a problem builder (minimize `cᵀx` subject to linear
//!   constraints, variable bounds, and integrality marks);
//! * [`simplex`] — a dense two-phase primal simplex for the LP relaxation,
//!   with Bland's rule for cycle-freedom;
//! * [`branch_bound`] — depth-first branch-and-bound over the fractional
//!   integer variables, with incumbent warm-starts, LP-bound pruning, and
//!   a deadline.
//!
//! Scale: bin-packing instances here have tens to a few hundred variables.
//! The solver is exact when given time and degrades gracefully (returns the
//! best incumbent with [`model::Status::TimedOut`]) otherwise — exactly the
//! behaviour Algorithm 1 requires.

pub mod branch_bound;
pub mod model;
pub mod simplex;

pub use branch_bound::{solve_milp, solve_milp_scratch, MilpOptions, MilpScratch};
pub use model::{Constraint, Problem, Sense, Solution, SolverError, Status, VarId};
pub use simplex::{solve_lp, solve_lp_scratch, LpOutcome, LpScratch};
