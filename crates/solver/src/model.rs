//! Problem model: variables, constraints, solutions.

use core::fmt;

/// Index of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub usize);

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `sum(terms) <= rhs`.
    Le,
    /// `sum(terms) >= rhs`.
    Ge,
    /// `sum(terms) == rhs`.
    Eq,
}

/// One linear constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse `(variable, coefficient)` terms.
    pub terms: Vec<(VarId, f64)>,
    /// Sense of the constraint.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A variable's metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variable {
    /// Lower bound (must be finite; bin-packing models use 0).
    pub lower: f64,
    /// Upper bound (`f64::INFINITY` for unbounded).
    pub upper: f64,
    /// Whether the variable must take an integer value.
    pub integer: bool,
}

/// A minimization problem: `min cᵀx` subject to linear constraints and
/// variable bounds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Problem {
    variables: Vec<Variable>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a continuous variable with objective coefficient `cost` and
    /// bounds `[lower, upper]`.
    pub fn add_var(&mut self, cost: f64, lower: f64, upper: f64) -> VarId {
        self.variables.push(Variable {
            lower,
            upper,
            integer: false,
        });
        self.objective.push(cost);
        VarId(self.variables.len() - 1)
    }

    /// Adds an integer variable with bounds `[lower, upper]`.
    pub fn add_int_var(&mut self, cost: f64, lower: f64, upper: f64) -> VarId {
        let id = self.add_var(cost, lower, upper);
        self.variables[id.0].integer = true;
        id
    }

    /// Adds a binary variable.
    pub fn add_bin_var(&mut self, cost: f64) -> VarId {
        self.add_int_var(cost, 0.0, 1.0)
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, sense: Sense, rhs: f64) {
        self.constraints.push(Constraint { terms, sense, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable metadata.
    pub fn variable(&self, id: VarId) -> &Variable {
        &self.variables[id.0]
    }

    /// All variables.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Tightens a variable's bounds (used by branch-and-bound).
    pub fn set_bounds(&mut self, id: VarId, lower: f64, upper: f64) {
        self.variables[id.0].lower = lower;
        self.variables[id.0].upper = upper;
    }

    /// Evaluates the objective at `values`.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.objective.iter().zip(values).map(|(c, x)| c * x).sum()
    }

    /// Checks whether `values` satisfies every constraint and bound within
    /// tolerance `tol`, including integrality.
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.variables.len() {
            return false;
        }
        for (v, &x) in self.variables.iter().zip(values) {
            if x < v.lower - tol || x > v.upper + tol {
                return false;
            }
            if v.integer && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|(id, coef)| coef * values[id.0]).sum();
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Outcome status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Proven optimal.
    Optimal,
    /// A feasible incumbent was found but optimality was not proven before
    /// the deadline.
    TimedOut,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// A solve result.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Status of the solve.
    pub status: Status,
    /// Objective value at `values` (meaningless for
    /// infeasible/unbounded).
    pub objective: f64,
    /// Variable assignment.
    pub values: Vec<f64>,
}

/// Errors from malformed models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// A constraint referenced a variable that does not exist.
    UnknownVariable(usize),
    /// A variable has inconsistent bounds (`lower > upper`).
    EmptyDomain(usize),
    /// The model has no variables.
    EmptyModel,
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::UnknownVariable(i) => {
                write!(f, "constraint references unknown variable {i}")
            }
            SolverError::EmptyDomain(i) => {
                write!(f, "variable {i} has lower bound above upper bound")
            }
            SolverError::EmptyModel => write!(f, "model has no variables"),
        }
    }
}

impl std::error::Error for SolverError {}

impl Problem {
    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), SolverError> {
        if self.variables.is_empty() {
            return Err(SolverError::EmptyModel);
        }
        for (i, v) in self.variables.iter().enumerate() {
            if v.lower > v.upper {
                return Err(SolverError::EmptyDomain(i));
            }
        }
        for c in &self.constraints {
            for (id, _) in &c.terms {
                if id.0 >= self.variables.len() {
                    return Err(SolverError::UnknownVariable(id.0));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut p = Problem::new();
        let a = p.add_var(1.0, 0.0, 10.0);
        let b = p.add_bin_var(2.0);
        assert_eq!(a, VarId(0));
        assert_eq!(b, VarId(1));
        assert!(p.variable(b).integer);
        assert_eq!(p.num_vars(), 2);
    }

    #[test]
    fn feasibility_checks_constraints_and_integrality() {
        let mut p = Problem::new();
        let x = p.add_int_var(1.0, 0.0, 5.0);
        p.add_constraint(vec![(x, 1.0)], Sense::Le, 3.0);
        assert!(p.is_feasible(&[3.0], 1e-9));
        assert!(!p.is_feasible(&[3.5], 1e-9)); // Fractional and > rhs.
        assert!(!p.is_feasible(&[4.0], 1e-9)); // Violates constraint.
        assert!(!p.is_feasible(&[-1.0], 1e-9)); // Below lower bound.
    }

    #[test]
    fn validation_catches_errors() {
        let p = Problem::new();
        assert_eq!(p.validate(), Err(SolverError::EmptyModel));

        let mut p = Problem::new();
        p.add_var(0.0, 2.0, 1.0);
        assert_eq!(p.validate(), Err(SolverError::EmptyDomain(0)));

        let mut p = Problem::new();
        let x = p.add_var(0.0, 0.0, 1.0);
        p.add_constraint(vec![(x, 1.0), (VarId(7), 1.0)], Sense::Le, 1.0);
        assert_eq!(p.validate(), Err(SolverError::UnknownVariable(7)));
    }
}
