//! Property-based suite: compile-gated because `proptest` is not
//! vendored in the offline build. Enable with `--features proptest` after
//! re-adding the `proptest` dev-dependency in a networked environment.
//! Deterministic sweep fallbacks live in the regular test suites.
#![cfg(feature = "proptest")]

//! Property-based tests for the LP/MILP solver: on random models the
//! returned points must actually be feasible, LP relaxations must bound
//! MILP optima, and branch-and-bound must match brute force on small
//! binary programs.

use std::time::Duration;

use lorafusion_solver::{solve_lp, solve_milp, MilpOptions, Problem, Sense, Status};
use proptest::prelude::*;

/// A random bounded minimization problem with `n` variables in [0, 10]
/// and `m` <=-constraints with nonnegative coefficients (always feasible:
/// the origin satisfies every constraint).
#[derive(Debug, Clone)]
struct RandomModel {
    costs: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
    integer: Vec<bool>,
}

fn arb_model() -> impl Strategy<Value = RandomModel> {
    (2usize..6, 1usize..5)
        .prop_flat_map(|(n, m)| {
            (
                prop::collection::vec(-5.0f64..5.0, n),
                prop::collection::vec((prop::collection::vec(0.0f64..3.0, n), 1.0f64..20.0), m),
                prop::collection::vec(any::<bool>(), n),
            )
        })
        .prop_map(|(costs, rows, integer)| RandomModel {
            costs,
            rows,
            integer,
        })
}

fn build(model: &RandomModel, relax: bool) -> Problem {
    let mut p = Problem::new();
    let vars: Vec<_> = model
        .costs
        .iter()
        .zip(&model.integer)
        .map(|(&c, &int)| {
            if int && !relax {
                p.add_int_var(c, 0.0, 10.0)
            } else {
                p.add_var(c, 0.0, 10.0)
            }
        })
        .collect();
    for (coefs, rhs) in &model.rows {
        let terms: Vec<_> = vars.iter().zip(coefs).map(|(&v, &c)| (v, c)).collect();
        p.add_constraint(terms, Sense::Le, *rhs);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LP solutions are feasible and optimal points of feasible models.
    #[test]
    fn lp_solutions_are_feasible(model in arb_model()) {
        let p = build(&model, true);
        let sol = solve_lp(&p).unwrap();
        prop_assert_eq!(sol.status, Status::Optimal);
        prop_assert!(p.is_feasible(&sol.values, 1e-5), "infeasible LP point");
        // The origin is feasible, so the optimum is at most the origin's
        // objective (zero).
        prop_assert!(sol.objective <= 1e-7, "objective {}", sol.objective);
    }

    /// MILP solutions are integer-feasible, and the LP relaxation bounds
    /// them from below.
    #[test]
    fn milp_respects_relaxation_bound(model in arb_model()) {
        let p_int = build(&model, false);
        let p_rel = build(&model, true);
        let milp = solve_milp(&p_int, &MilpOptions {
            timeout: Duration::from_millis(500),
            ..MilpOptions::default()
        }).unwrap();
        let lp = solve_lp(&p_rel).unwrap();
        prop_assert!(matches!(milp.status, Status::Optimal | Status::TimedOut));
        prop_assert!(p_int.is_feasible(&milp.values, 1e-5), "infeasible MILP point");
        prop_assert!(milp.objective >= lp.objective - 1e-6,
            "MILP {} below LP bound {}", milp.objective, lp.objective);
    }

    /// On all-binary knapsack-style models, branch-and-bound matches brute
    /// force exactly.
    #[test]
    fn milp_matches_brute_force(
        costs in prop::collection::vec(-4.0f64..4.0, 2..7),
        weights in prop::collection::vec(0.5f64..3.0, 2..7),
        cap in 1.0f64..8.0,
    ) {
        let n = costs.len().min(weights.len());
        let mut p = Problem::new();
        let vars: Vec<_> = costs.iter().take(n).map(|&c| p.add_bin_var(c)).collect();
        let terms: Vec<_> = vars.iter().zip(&weights).map(|(&v, &w)| (v, w)).collect();
        p.add_constraint(terms, Sense::Le, cap);

        let sol = solve_milp(&p, &MilpOptions::default()).unwrap();
        prop_assert_eq!(sol.status, Status::Optimal);

        // Brute force over all assignments.
        let mut best = f64::INFINITY;
        for mask in 0u32..(1 << n) {
            let weight: f64 = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| weights[i]).sum();
            if weight <= cap + 1e-9 {
                let cost: f64 = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| costs[i]).sum();
                best = best.min(cost);
            }
        }
        prop_assert!((sol.objective - best).abs() < 1e-6,
            "B&B {} vs brute force {}", sol.objective, best);
    }

    /// Warm starts never worsen the result.
    #[test]
    fn warm_start_never_hurts(model in arb_model()) {
        let p = build(&model, false);
        let cold = solve_milp(&p, &MilpOptions::default()).unwrap();
        let warm = solve_milp(&p, &MilpOptions {
            warm_start: Some(vec![0.0; model.costs.len()]),
            ..MilpOptions::default()
        }).unwrap();
        if cold.status == Status::Optimal && warm.status == Status::Optimal {
            prop_assert!((cold.objective - warm.objective).abs() < 1e-6);
        }
        prop_assert!(warm.objective <= 1e-7, "warm start at origin bounds objective");
    }
}
