//! Steady-state allocation gate for the branch-and-bound core (ISSUE 7).
//!
//! A MILP solve through [`MilpScratch`] must not touch the heap per node
//! once warmed: the simplex tableau lives in a flat reusable buffer,
//! nodes go into an arena that records one bound tightening each, and
//! per-node bound vectors are rebuilt in place by walking the parent
//! chain. This test installs a counting global allocator, warms the
//! scratch with one solve, then asserts a repeat solve — exploring
//! dozens of nodes — performs only the constant-size allocations of the
//! returned [`Solution`] (its `values` vector), independent of tree size.
//!
//! It lives in its own test binary so the global allocator cannot count
//! unrelated tests running on sibling threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use lorafusion_solver::{solve_milp_scratch, MilpOptions, MilpScratch, Problem, Sense, Status};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates to `System`, adding only a relaxed
// counter bump; layout and pointer contracts are forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`; `layout` is forwarded.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: our caller upholds `GlobalAlloc::alloc`'s contract
        // (non-zero layout), which is exactly what `System` requires.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `System::alloc_zeroed`, forwarded.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: caller-supplied layout forwarded verbatim to `System`.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: same contract as `System::realloc`, forwarded.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr` came from this allocator (which is `System`
        // underneath) with `layout`, per the caller's contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: same contract as `System::dealloc`, forwarded.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System` via this wrapper with
        // the same `layout`, per the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// A bin-packing MILP hard enough to force real tree search: 9 items
/// into up to 4 bins of capacity 17, minimizing used bins, with no
/// symmetry breaking so branch-and-bound explores many equivalent
/// assignments (~80 nodes to prove optimality).
fn branching_heavy_problem() -> Problem {
    let items = [9.0f64, 8.0, 7.0, 6.0, 5.0, 5.0, 4.0, 4.0, 3.0];
    let bins = 4usize;
    let cap = 17.0;
    let mut p = Problem::new();
    let x: Vec<Vec<_>> = items
        .iter()
        .map(|_| (0..bins).map(|_| p.add_bin_var(0.0)).collect())
        .collect();
    let z: Vec<_> = (0..bins).map(|_| p.add_bin_var(1.0)).collect();
    for xi in &x {
        p.add_constraint(xi.iter().map(|&v| (v, 1.0)).collect(), Sense::Eq, 1.0);
    }
    for (b, &zb) in z.iter().enumerate() {
        let mut terms: Vec<_> = items
            .iter()
            .enumerate()
            .map(|(i, &w)| (x[i][b], w))
            .collect();
        terms.push((zb, -cap));
        p.add_constraint(terms, Sense::Le, 0.0);
    }
    p
}

#[test]
fn warmed_milp_solve_allocates_constant_not_per_node() {
    // Tracing must be off: this gate covers the disabled path that every
    // production solve takes when LORAFUSION_TRACE is unset.
    lorafusion_trace::disable();
    assert!(!lorafusion_trace::enabled());

    let p = branching_heavy_problem();
    let options = MilpOptions::default();
    let mut scratch = MilpScratch::new();
    let nodes_counter = lorafusion_trace::metrics::counter("solver.bb.nodes");

    // Warm up: the first solve sizes the tableau, the node arena, and the
    // bound vectors, and pays the one-time trace counter registration.
    let warm = solve_milp_scratch(&p, &options, &mut scratch).unwrap();
    assert_eq!(warm.status, Status::Optimal);

    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let nodes_before = nodes_counter.get();

    let sol = solve_milp_scratch(&p, &options, &mut scratch).unwrap();

    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    let nodes = nodes_counter.get() - nodes_before;

    assert_eq!(sol.status, Status::Optimal);
    // Total weight 51, capacity 17: 3 bins necessary and sufficient.
    assert_eq!(sol.objective.round() as i64, 3);
    assert!(
        nodes >= 50,
        "problem too easy to exercise per-node reuse: {nodes} nodes"
    );
    // The only permitted allocations are the returned Solution's `values`
    // clone — a small constant independent of the {nodes}-node tree. The
    // bound of 4 leaves headroom for allocator-internal bookkeeping.
    assert!(
        allocs <= 4,
        "warmed MILP solve allocated {allocs} times across {nodes} nodes"
    );
}
