//! Property-based suite: compile-gated because `proptest` is not
//! vendored in the offline build. Enable with `--features proptest` after
//! re-adding the `proptest` dev-dependency in a networked environment.
//! Deterministic sweep fallbacks live in the regular test suites.
#![cfg(feature = "proptest")]

//! Property-based tests for the pipeline simulator: on random microbatch
//! streams the simulation must be physically consistent — no overlapping
//! work on a stage, all dependencies respected, and makespan bounded below
//! by the critical-path lower bounds.

use lorafusion_dist::pipeline::{simulate_pipeline, PipelineJob, PipelineOptions};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Stream {
    jobs: Vec<PipelineJob>,
    stages: usize,
}

fn arb_stream() -> impl Strategy<Value = Stream> {
    (
        2usize..5,
        prop::collection::vec((1u32..40, 1u32..40), 2..24),
    )
        .prop_map(|(stages, durs)| Stream {
            jobs: durs
                .into_iter()
                .map(|(f, b)| PipelineJob {
                    fwd: vec![f as f64 * 0.01; stages],
                    bwd: vec![b as f64 * 0.01; stages],
                    tokens: 100,
                    after_backward_of: None,
                })
                .collect(),
            stages,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tasks on the same stage never overlap, and each task's duration
    /// matches its job's cost.
    #[test]
    fn stages_are_sequential(stream in arb_stream()) {
        let opts = PipelineOptions {
            stages: stream.stages,
            comm_seconds: 0.001,
            optimizer_seconds: 0.0,
        };
        let r = simulate_pipeline(&stream.jobs, &[stream.jobs.len()], &opts);
        for stage in 0..stream.stages {
            let mut events: Vec<_> =
                r.trace.iter().filter(|e| e.stage == stage).collect();
            events.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
            for w in events.windows(2) {
                prop_assert!(w[1].start >= w[0].end - 1e-12, "overlap on stage {stage}");
            }
        }
        // Every microbatch executes F and B on every stage exactly once.
        prop_assert_eq!(r.trace.len(), 2 * stream.jobs.len() * stream.stages);
    }

    /// Dataflow dependencies hold in the trace: F(i,s) after F(i,s-1),
    /// B(i,s) after B(i,s+1) and after F(i,s); B at the last stage after F.
    #[test]
    fn dependencies_hold(stream in arb_stream()) {
        let opts = PipelineOptions {
            stages: stream.stages,
            comm_seconds: 0.002,
            optimizer_seconds: 0.0,
        };
        let r = simulate_pipeline(&stream.jobs, &[stream.jobs.len()], &opts);
        let find = |i: usize, stage: usize, fwd: bool| {
            r.trace
                .iter()
                .find(|e| e.microbatch == i && e.stage == stage && e.forward == fwd)
                .copied()
                .expect("task executed")
        };
        for i in 0..stream.jobs.len() {
            for stage in 0..stream.stages {
                let f = find(i, stage, true);
                let b = find(i, stage, false);
                prop_assert!(b.start >= f.end - 1e-12, "B before F at stage {stage}");
                if stage > 0 {
                    let up = find(i, stage - 1, true);
                    prop_assert!(f.start >= up.end + opts.comm_seconds - 1e-9);
                }
                if stage + 1 < stream.stages {
                    let down = find(i, stage + 1, false);
                    prop_assert!(b.start >= down.end + opts.comm_seconds - 1e-9);
                }
            }
        }
    }

    /// The makespan respects both lower bounds: the busiest stage's total
    /// work, and any single microbatch's full pipeline traversal.
    #[test]
    fn makespan_lower_bounds(stream in arb_stream()) {
        let opts = PipelineOptions {
            stages: stream.stages,
            comm_seconds: 0.0,
            optimizer_seconds: 0.0,
        };
        let r = simulate_pipeline(&stream.jobs, &[stream.jobs.len()], &opts);
        let stage_work: f64 = stream
            .jobs
            .iter()
            .map(|j| j.fwd[0] + j.bwd[0])
            .sum();
        prop_assert!(r.makespan >= stage_work - 1e-9);
        let traversal: f64 = (0..stream.stages)
            .map(|s| stream.jobs[0].fwd[s] + stream.jobs[0].bwd[s])
            .sum();
        prop_assert!(r.makespan >= traversal - 1e-9);
        // Bubble ratio stays in [0, 1).
        prop_assert!((0.0..1.0).contains(&r.bubble_ratio));
    }

    /// Flushing into more groups never reduces the makespan.
    #[test]
    fn flushes_never_help(stream in arb_stream(), cut in 1usize..23) {
        let n = stream.jobs.len();
        let cut = cut.min(n - 1).max(1);
        let opts = PipelineOptions {
            stages: stream.stages,
            comm_seconds: 0.001,
            optimizer_seconds: 0.0,
        };
        let continuous = simulate_pipeline(&stream.jobs, &[n], &opts);
        let flushed = simulate_pipeline(&stream.jobs, &[cut, n - cut], &opts);
        prop_assert!(flushed.makespan >= continuous.makespan - 1e-9);
    }

    /// Adapter dependencies delay but never deadlock when spaced at least
    /// `stages - 1` slots apart.
    #[test]
    fn spaced_dependencies_never_deadlock(stream in arb_stream()) {
        let mut jobs = stream.jobs.clone();
        let gap = stream.stages - 1;
        for i in 0..jobs.len() {
            if i > gap {
                jobs[i].after_backward_of = Some(i - gap - 1);
            }
        }
        let opts = PipelineOptions {
            stages: stream.stages,
            comm_seconds: 0.001,
            optimizer_seconds: 0.0,
        };
        // Must terminate (no deadlock assert) and honor the edges.
        let r = simulate_pipeline(&jobs, &[jobs.len()], &opts);
        for (i, job) in jobs.iter().enumerate() {
            if let Some(dep) = job.after_backward_of {
                let f = r.trace.iter().find(|e| e.microbatch == i && e.stage == 0 && e.forward).unwrap();
                let b = r.trace.iter().find(|e| e.microbatch == dep && e.stage == 0 && !e.forward).unwrap();
                prop_assert!(f.start >= b.end - 1e-12, "dependency violated for mb {i}");
            }
        }
    }

    /// The Chrome trace is syntactically sane and covers every event.
    #[test]
    fn chrome_trace_is_complete(stream in arb_stream()) {
        let opts = PipelineOptions {
            stages: stream.stages,
            comm_seconds: 0.0,
            optimizer_seconds: 0.0,
        };
        let r = simulate_pipeline(&stream.jobs, &[stream.jobs.len()], &opts);
        let json = r.chrome_trace();
        prop_assert!(json.starts_with('[') && json.ends_with(']'));
        prop_assert_eq!(json.matches("\"ph\":\"X\"").count(), r.trace.len());
    }
}
