//! Cluster and interconnect models.

use lorafusion_gpu::DeviceKind;

/// A point-to-point or collective transport link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Effective per-direction bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Per-message latency in microseconds.
    pub latency_us: f64,
}

impl Link {
    /// NVLink 4 (H100 SXM): 450 GB/s per direction.
    pub const NVLINK: Link = Link {
        bandwidth_gbs: 450.0,
        latency_us: 5.0,
    };
    /// PCIe Gen4 x16 (~25 GB/s effective, the L40S servers).
    pub const PCIE: Link = Link {
        bandwidth_gbs: 25.0,
        latency_us: 10.0,
    };
    /// InfiniBand NDR 400 (~45 GB/s effective per pair).
    pub const INFINIBAND: Link = Link {
        bandwidth_gbs: 45.0,
        latency_us: 8.0,
    };

    /// Transfer time for `bytes` over this link.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / (self.bandwidth_gbs * 1e9)
    }
}

/// A homogeneous GPU cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// GPU model.
    pub device: DeviceKind,
    /// Number of GPUs.
    pub gpus: usize,
    /// GPUs per node (intra-node link applies within, inter-node across).
    pub gpus_per_node: usize,
    /// Intra-node link.
    pub intra_link: Link,
    /// Inter-node link.
    pub inter_link: Link,
}

impl ClusterSpec {
    /// The paper's H100 node: 8x H100 SXM with NVLink, InfiniBand across
    /// nodes; `gpus` may be smaller than a node.
    pub fn h100(gpus: usize) -> Self {
        Self {
            device: DeviceKind::H100Sxm,
            gpus,
            gpus_per_node: 8,
            intra_link: Link::NVLINK,
            inter_link: Link::INFINIBAND,
        }
    }

    /// The paper's L40S server: 4x L40S over PCIe.
    pub fn l40s(gpus: usize) -> Self {
        Self {
            device: DeviceKind::L40S,
            gpus,
            gpus_per_node: 4,
            intra_link: Link::PCIE,
            inter_link: Link::INFINIBAND,
        }
    }

    /// The link connecting ranks `a` and `b`.
    pub fn link_between(&self, a: usize, b: usize) -> Link {
        if a / self.gpus_per_node == b / self.gpus_per_node {
            self.intra_link
        } else {
            self.inter_link
        }
    }

    /// The slowest link among any group of `n` consecutive ranks (the
    /// bottleneck link a ring collective over them sees).
    pub fn bottleneck_link(&self, n: usize) -> Link {
        if n <= self.gpus_per_node {
            self.intra_link
        } else {
            self.inter_link
        }
    }

    /// Whether the cluster spans several nodes.
    pub fn multi_node(&self) -> bool {
        self.gpus > self.gpus_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let t1 = Link::NVLINK.transfer_seconds(1 << 30);
        let t2 = Link::NVLINK.transfer_seconds(2 << 30);
        assert!(t2 > t1 * 1.9);
        // 1 GiB over 450 GB/s is ~2.4 ms.
        assert!((t1 - 2.4e-3).abs() < 0.5e-3, "t1 {t1}");
    }

    #[test]
    fn link_topology() {
        let c = ClusterSpec::h100(16);
        assert!(c.multi_node());
        assert_eq!(c.link_between(0, 7), Link::NVLINK);
        assert_eq!(c.link_between(7, 8), Link::INFINIBAND);
        assert_eq!(c.bottleneck_link(4), Link::NVLINK);
        assert_eq!(c.bottleneck_link(16), Link::INFINIBAND);
    }

    #[test]
    fn l40s_uses_pcie() {
        let c = ClusterSpec::l40s(4);
        assert!(!c.multi_node());
        assert_eq!(c.intra_link, Link::PCIE);
    }
}
