//! Event-driven pipeline-parallel simulation.
//!
//! Simulates 1F1B execution of a microbatch stream over `S` stages, in two
//! modes:
//!
//! * **Flushed** (Megatron-LM): the stream is cut into global batches;
//!   each batch drains the pipeline completely before the optimizer step
//!   and the next batch — the source of the large bubbles in Figs. 5/20;
//! * **Continuous** (multi-LoRA zero-bubble): one uninterrupted 1F1B
//!   stream. Cross-global-batch dependencies of each adapter are expressed
//!   as `after_backward_of` edges, which the scheduler's bubble-lemma
//!   spacing (including no-op microbatches) makes non-blocking in the
//!   steady state.

use lorafusion_gpu::Timeline;

/// One microbatch to execute.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineJob {
    /// Forward seconds per stage.
    pub fwd: Vec<f64>,
    /// Backward seconds per stage.
    pub bwd: Vec<f64>,
    /// Real tokens (for throughput accounting).
    pub tokens: usize,
    /// Index of a microbatch whose stage-0 backward must complete before
    /// this microbatch's stage-0 forward starts (same-adapter global-batch
    /// dependency). Must reference an earlier microbatch.
    pub after_backward_of: Option<usize>,
}

impl PipelineJob {
    /// A no-op filler occupying a schedule slot with zero work.
    pub fn noop(stages: usize) -> Self {
        Self {
            fwd: vec![0.0; stages],
            bwd: vec![0.0; stages],
            tokens: 0,
            after_backward_of: None,
        }
    }
}

/// Simulation options.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PipelineOptions {
    /// Number of stages.
    pub stages: usize,
    /// Activation/gradient transfer time between adjacent stages.
    pub comm_seconds: f64,
    /// Optimizer step time charged at each flush boundary.
    pub optimizer_seconds: f64,
}

/// One executed task in the pipeline trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceEvent {
    /// Microbatch index in the stream.
    pub microbatch: usize,
    /// Pipeline stage.
    pub stage: usize,
    /// True for forward, false for backward.
    pub forward: bool,
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

/// Simulation result.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PipelineResult {
    /// Total wall-clock seconds.
    pub makespan: f64,
    /// Busy seconds per stage.
    pub per_stage_busy: Vec<f64>,
    /// Mean idle fraction across stages — the paper's pipeline bubble
    /// ratio (Fig. 20).
    pub bubble_ratio: f64,
    /// Total real tokens processed.
    pub tokens: usize,
    /// Full execution trace (one event per executed task).
    pub trace: Vec<TraceEvent>,
}

impl PipelineResult {
    /// Renders the trace in Chrome trace-event JSON (open in
    /// `chrome://tracing` or Perfetto; one row per pipeline stage).
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.trace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{}}}",
                if e.forward { "F" } else { "B" },
                e.microbatch,
                e.start * 1e6,
                (e.end - e.start) * 1e6,
                e.stage
            ));
        }
        out.push(']');
        out
    }
}

impl PipelineResult {
    /// Replays the execution trace into one [`Timeline`] per stage, so the
    /// simulated ranks get the same event/idle-gap accounting as any other
    /// simulated device. Trace events are chronological per stage, so each
    /// `wait_until(start)` records the exact inter-task gap as an explicit
    /// [`lorafusion_gpu::IdleGap`]; a final `wait_until(makespan)` turns
    /// flush/optimizer tail time into idle as well. The mean per-stage
    /// [`Timeline::idle_ratio_from_events`] therefore equals
    /// [`PipelineResult::bubble_ratio`].
    pub fn stage_timelines(&self) -> Vec<Timeline> {
        let stages = self.per_stage_busy.len();
        let mut timelines: Vec<Timeline> = (0..stages).map(|_| Timeline::new()).collect();
        for e in &self.trace {
            let tl = &mut timelines[e.stage];
            tl.wait_until(e.start);
            tl.push(
                format!("{}{}", if e.forward { "F" } else { "B" }, e.microbatch),
                e.end - e.start,
            );
        }
        for tl in timelines.iter_mut() {
            tl.wait_until(self.makespan);
        }
        timelines
    }

    /// Exports the per-stage timelines onto the global trace as simulated
    /// GPU tracks (one per stage). No-op when tracing is disabled.
    pub fn export_to_trace(&self, label: &str) {
        if !lorafusion_trace::enabled() {
            return;
        }
        for (stage, tl) in self.stage_timelines().into_iter().enumerate() {
            tl.export_to_trace(&format!("{label} stage{stage}"));
        }
    }

    /// Throughput in tokens per second.
    pub fn tokens_per_second(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.tokens as f64 / self.makespan
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskKind {
    Fwd,
    Bwd,
}

/// Simulates the stream. `flush_groups` gives the sizes of consecutive
/// flush groups (their sum must equal `jobs.len()`); pass a single group
/// for the continuous zero-bubble mode.
pub fn simulate_pipeline(
    jobs: &[PipelineJob],
    flush_groups: &[usize],
    opts: &PipelineOptions,
) -> PipelineResult {
    let s = opts.stages.max(1);
    let n = jobs.len();
    let _span = lorafusion_trace::span!("pipeline.simulate", stages = s, microbatches = n);
    assert_eq!(
        flush_groups.iter().sum::<usize>(),
        n,
        "flush groups must partition the microbatch stream"
    );

    let mut fwd_done = vec![vec![f64::INFINITY; s]; n];
    let mut bwd_done = vec![vec![f64::INFINITY; s]; n];
    let mut stage_time = vec![0.0f64; s];
    let mut busy = vec![0.0f64; s];
    let mut clock = 0.0f64;
    let mut trace: Vec<TraceEvent> = Vec::new();

    let mut start = 0usize;
    for &group_len in flush_groups {
        let end = start + group_len;
        if group_len == 0 {
            continue;
        }
        // Per-stage 1F1B task order for this group.
        let mut orders: Vec<Vec<(TaskKind, usize)>> = Vec::with_capacity(s);
        for stage in 0..s {
            let warmup = (s - 1 - stage).min(group_len);
            let mut order = Vec::with_capacity(2 * group_len);
            for i in 0..warmup {
                order.push((TaskKind::Fwd, start + i));
            }
            let mut next_b = 0usize;
            for i in warmup..group_len {
                order.push((TaskKind::Fwd, start + i));
                order.push((TaskKind::Bwd, start + next_b));
                next_b += 1;
            }
            while next_b < group_len {
                order.push((TaskKind::Bwd, start + next_b));
                next_b += 1;
            }
            orders.push(order);
        }

        // Event loop: each stage executes its order as dependencies allow.
        let mut cursor = vec![0usize; s];
        let total_tasks: usize = orders.iter().map(Vec::len).sum();
        let mut done = 0usize;
        // Stages resume no earlier than the previous group's flush point.
        for t in stage_time.iter_mut() {
            *t = t.max(clock);
        }
        // Readiness of a task given the completion tables.
        let task_ready = |kind: TaskKind,
                          i: usize,
                          stage: usize,
                          fwd_done: &Vec<Vec<f64>>,
                          bwd_done: &Vec<Vec<f64>>|
         -> Option<f64> {
            match kind {
                TaskKind::Fwd => {
                    if stage == 0 {
                        match jobs[i].after_backward_of {
                            Some(dep) => {
                                debug_assert!(dep < i, "dependency must be earlier");
                                let t = bwd_done[dep][0];
                                t.is_finite().then_some(t)
                            }
                            None => Some(0.0),
                        }
                    } else {
                        let t = fwd_done[i][stage - 1];
                        t.is_finite().then_some(t + opts.comm_seconds)
                    }
                }
                TaskKind::Bwd => {
                    if stage == s - 1 {
                        let t = fwd_done[i][stage];
                        t.is_finite().then_some(t)
                    } else {
                        let down = bwd_done[i][stage + 1];
                        let own_fwd = fwd_done[i][stage];
                        (down.is_finite() && own_fwd.is_finite())
                            .then_some((down + opts.comm_seconds).max(own_fwd))
                    }
                }
            }
        };

        while done < total_tasks {
            let mut progressed = false;
            for stage in 0..s {
                while cursor[stage] < orders[stage].len() {
                    let (kind, i) = orders[stage][cursor[stage]];
                    let mut ready = task_ready(kind, i, stage, &fwd_done, &bwd_done);
                    if ready.is_none()
                        && kind == TaskKind::Fwd
                        && jobs[i].after_backward_of.is_some()
                    {
                        // A forward stalled on its adapter's previous
                        // global batch lets the backward sharing its 1F1B
                        // slot run first (what a zero-bubble scheduler
                        // does dynamically).
                        if let Some(&(next_kind, next_i)) = orders[stage].get(cursor[stage] + 1) {
                            if next_kind == TaskKind::Bwd
                                && task_ready(next_kind, next_i, stage, &fwd_done, &bwd_done)
                                    .is_some()
                            {
                                orders[stage].swap(cursor[stage], cursor[stage] + 1);
                                continue;
                            }
                        }
                    }
                    let Some(ready_at) = ready.take() else {
                        break;
                    };
                    let (kind, i) = orders[stage][cursor[stage]];
                    let dur = match kind {
                        TaskKind::Fwd => jobs[i].fwd[stage],
                        TaskKind::Bwd => jobs[i].bwd[stage],
                    };
                    let begin = stage_time[stage].max(ready_at);
                    let finish = begin + dur;
                    stage_time[stage] = finish;
                    busy[stage] += dur;
                    trace.push(TraceEvent {
                        microbatch: i,
                        stage,
                        forward: kind == TaskKind::Fwd,
                        start: begin,
                        end: finish,
                    });
                    match kind {
                        TaskKind::Fwd => fwd_done[i][stage] = finish,
                        TaskKind::Bwd => bwd_done[i][stage] = finish,
                    }
                    cursor[stage] += 1;
                    done += 1;
                    progressed = true;
                }
            }
            assert!(
                progressed,
                "pipeline deadlock: inconsistent schedule dependencies"
            );
        }

        // Flush: everyone synchronizes, then the optimizer runs.
        clock = stage_time.iter().fold(0.0f64, |a, &b| a.max(b)) + opts.optimizer_seconds;
        start = end;
    }

    let makespan = clock.max(stage_time.iter().fold(0.0f64, |a, &b| a.max(b)));
    let bubble_ratio = if makespan > 0.0 {
        1.0 - busy.iter().sum::<f64>() / (makespan * s as f64)
    } else {
        0.0
    };
    let result = PipelineResult {
        makespan,
        per_stage_busy: busy,
        bubble_ratio,
        tokens: jobs.iter().map(|j| j.tokens).sum(),
        trace,
    };
    if lorafusion_trace::enabled() {
        use std::sync::atomic::{AtomicU64, Ordering};
        static RUNS: AtomicU64 = AtomicU64::new(0);
        let run = RUNS.fetch_add(1, Ordering::Relaxed);
        result.export_to_trace(&format!("pipeline#{run}"));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_jobs(n: usize, stages: usize, f: f64, b: f64) -> Vec<PipelineJob> {
        (0..n)
            .map(|_| PipelineJob {
                fwd: vec![f; stages],
                bwd: vec![b; stages],
                tokens: 1000,
                after_backward_of: None,
            })
            .collect()
    }

    #[test]
    fn single_stage_is_sequential() {
        let jobs = uniform_jobs(4, 1, 1.0, 2.0);
        let opts = PipelineOptions {
            stages: 1,
            comm_seconds: 0.0,
            optimizer_seconds: 0.0,
        };
        let r = simulate_pipeline(&jobs, &[4], &opts);
        assert!((r.makespan - 12.0).abs() < 1e-9);
        assert!(r.bubble_ratio.abs() < 1e-9);
    }

    #[test]
    fn classic_1f1b_bubble_formula() {
        // Uniform microbatches, f = b: bubble = (S-1)/(M + S-1) when
        // bwd = fwd; with bwd = 2 fwd the canonical formula uses the
        // combined slot time. Check against (S-1)/(M+S-1) for f == b.
        let (s, m) = (4usize, 8usize);
        let jobs = uniform_jobs(m, s, 1.0, 1.0);
        let opts = PipelineOptions {
            stages: s,
            comm_seconds: 0.0,
            optimizer_seconds: 0.0,
        };
        let r = simulate_pipeline(&jobs, &[m], &opts);
        let expect = (s - 1) as f64 / (m + s - 1) as f64;
        assert!(
            (r.bubble_ratio - expect).abs() < 0.02,
            "bubble {} expect {expect}",
            r.bubble_ratio
        );
    }

    #[test]
    fn more_microbatches_shrink_the_bubble() {
        let opts = PipelineOptions {
            stages: 4,
            comm_seconds: 0.0,
            optimizer_seconds: 0.0,
        };
        let small = simulate_pipeline(&uniform_jobs(4, 4, 1.0, 2.0), &[4], &opts);
        let large = simulate_pipeline(&uniform_jobs(32, 4, 1.0, 2.0), &[32], &opts);
        assert!(large.bubble_ratio < small.bubble_ratio);
        assert!(large.tokens_per_second() > small.tokens_per_second());
    }

    #[test]
    fn flushes_add_bubbles() {
        let jobs = uniform_jobs(16, 4, 1.0, 2.0);
        let opts = PipelineOptions {
            stages: 4,
            comm_seconds: 0.0,
            optimizer_seconds: 0.0,
        };
        let continuous = simulate_pipeline(&jobs, &[16], &opts);
        let flushed = simulate_pipeline(&jobs, &[4, 4, 4, 4], &opts);
        assert!(flushed.bubble_ratio > continuous.bubble_ratio * 1.3);
        assert!(flushed.makespan > continuous.makespan);
    }

    #[test]
    fn imbalance_creates_bubbles() {
        let opts = PipelineOptions {
            stages: 4,
            comm_seconds: 0.0,
            optimizer_seconds: 0.0,
        };
        let uniform = simulate_pipeline(&uniform_jobs(16, 4, 1.0, 2.0), &[16], &opts);
        let mut ragged = uniform_jobs(16, 4, 1.0, 2.0);
        for (i, j) in ragged.iter_mut().enumerate() {
            let scale = if i % 4 == 0 { 2.5 } else { 0.5 };
            for v in j.fwd.iter_mut().chain(j.bwd.iter_mut()) {
                *v *= scale;
            }
        }
        let imb = simulate_pipeline(&ragged, &[16], &opts);
        assert!(imb.bubble_ratio > uniform.bubble_ratio + 0.03);
    }

    #[test]
    fn backward_dependency_is_honored() {
        let stages = 2;
        let mut jobs = uniform_jobs(4, stages, 1.0, 1.0);
        // Microbatch 3 must wait for microbatch 0's backward at stage 0.
        jobs[3].after_backward_of = Some(0);
        let opts = PipelineOptions {
            stages,
            comm_seconds: 0.0,
            optimizer_seconds: 0.0,
        };
        let r = simulate_pipeline(&jobs, &[4], &opts);
        // Without the dep, makespan would be the steady 1F1B value; the dep
        // can only delay.
        let mut free = uniform_jobs(4, stages, 1.0, 1.0);
        free[3].after_backward_of = None;
        let base = simulate_pipeline(&free, &[4], &opts);
        assert!(r.makespan >= base.makespan - 1e-12);
    }

    #[test]
    fn noops_occupy_slots_without_work() {
        let stages = 4;
        let mut jobs = uniform_jobs(8, stages, 1.0, 2.0);
        jobs.insert(4, PipelineJob::noop(stages));
        let opts = PipelineOptions {
            stages,
            comm_seconds: 0.0,
            optimizer_seconds: 0.0,
        };
        let r = simulate_pipeline(&jobs, &[9], &opts);
        assert_eq!(r.tokens, 8000);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn idle_events_reproduce_bubble_ratio() {
        // The aggregate bubble ratio (cursor arithmetic) must be exactly
        // reproducible from the explicit idle events of the replayed
        // per-stage timelines — flushed mode included, where the optimizer
        // tail shows up as trailing idle gaps.
        let stages = 4usize;
        let jobs = uniform_jobs(8, stages, 1.0, 2.0);
        let opts = PipelineOptions {
            stages,
            comm_seconds: 0.1,
            optimizer_seconds: 0.5,
        };
        let r = simulate_pipeline(&jobs, &[4, 4], &opts);
        let timelines = r.stage_timelines();
        assert_eq!(timelines.len(), stages);
        let mean_idle = timelines
            .iter()
            .map(|t| t.idle_ratio_from_events())
            .sum::<f64>()
            / stages as f64;
        assert!(
            (mean_idle - r.bubble_ratio).abs() < 1e-9,
            "idle-event bubble {mean_idle} != cursor bubble {}",
            r.bubble_ratio
        );
        for (tl, &busy) in timelines.iter().zip(&r.per_stage_busy) {
            assert!((tl.makespan() - r.makespan).abs() < 1e-9);
            assert!((tl.idle_total() - (r.makespan - busy)).abs() < 1e-9);
        }
    }

    #[test]
    fn optimizer_time_is_charged_per_flush() {
        let jobs = uniform_jobs(8, 2, 1.0, 1.0);
        let opts0 = PipelineOptions {
            stages: 2,
            comm_seconds: 0.0,
            optimizer_seconds: 0.0,
        };
        let opts1 = PipelineOptions {
            stages: 2,
            comm_seconds: 0.0,
            optimizer_seconds: 0.5,
        };
        let a = simulate_pipeline(&jobs, &[4, 4], &opts0);
        let b = simulate_pipeline(&jobs, &[4, 4], &opts1);
        assert!((b.makespan - a.makespan - 1.0).abs() < 1e-9);
    }
}
