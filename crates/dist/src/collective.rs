//! Alpha-beta cost models for NCCL-style collectives.
//!
//! Ring algorithms: each of the `n` ranks sends `(n-1)/n` of the payload
//! across the bottleneck link, in `n - 1` latency-bearing steps.

use crate::cluster::Link;

/// All-gather of `bytes` total output across `n` ranks.
pub fn all_gather_seconds(link: Link, n: usize, bytes: u64) -> f64 {
    ring_seconds(link, n, bytes)
}

/// Reduce-scatter of `bytes` total input across `n` ranks.
pub fn reduce_scatter_seconds(link: Link, n: usize, bytes: u64) -> f64 {
    ring_seconds(link, n, bytes)
}

/// All-reduce of `bytes` across `n` ranks (reduce-scatter + all-gather).
pub fn all_reduce_seconds(link: Link, n: usize, bytes: u64) -> f64 {
    2.0 * ring_seconds(link, n, bytes)
}

/// Point-to-point activation transfer.
pub fn p2p_seconds(link: Link, bytes: u64) -> f64 {
    link.transfer_seconds(bytes)
}

fn ring_seconds(link: Link, n: usize, bytes: u64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let steps = (n - 1) as f64;
    let payload = bytes as f64 * steps / n as f64;
    steps * link.latency_us * 1e-6 + payload / (link.bandwidth_gbs * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_collectives_are_free() {
        assert_eq!(all_gather_seconds(Link::NVLINK, 1, 1 << 30), 0.0);
        assert_eq!(all_reduce_seconds(Link::NVLINK, 1, 1 << 30), 0.0);
    }

    #[test]
    fn allreduce_is_twice_reduce_scatter() {
        let rs = reduce_scatter_seconds(Link::NVLINK, 8, 1 << 30);
        let ar = all_reduce_seconds(Link::NVLINK, 8, 1 << 30);
        assert!((ar - 2.0 * rs).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_term_approaches_full_payload() {
        // For large n, ring time approaches bytes / bandwidth.
        let t = all_gather_seconds(Link::NVLINK, 64, 1 << 30);
        let ideal = (1u64 << 30) as f64 / (450.0 * 1e9);
        assert!(t > ideal * 0.9 && t < ideal * 1.3, "t {t} ideal {ideal}");
    }

    #[test]
    fn slower_links_cost_more() {
        let nv = all_reduce_seconds(Link::NVLINK, 4, 1 << 28);
        let pcie = all_reduce_seconds(Link::PCIE, 4, 1 << 28);
        assert!(pcie > 10.0 * nv);
    }
}
