//! Transformer model configurations used in the paper's evaluation.

/// Architecture of a decoder-only transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransformerConfig {
    /// Display name.
    pub name: &'static str,
    /// Number of decoder layers.
    pub layers: usize,
    /// Hidden size `h`.
    pub hidden: usize,
    /// FFN intermediate size (SwiGLU width).
    pub ffn_hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Key/value heads (grouped-query attention).
    pub kv_heads: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

impl TransformerConfig {
    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Projection width of the K/V projections.
    pub fn kv_dim(&self) -> usize {
        self.kv_heads * self.head_dim()
    }

    /// The seven LoRA-target linear layers of one decoder layer as
    /// `(name, k, n)` shapes: attention q/k/v/o plus SwiGLU gate/up/down.
    pub fn lora_linears(&self) -> [(&'static str, usize, usize); 7] {
        let h = self.hidden;
        let kv = self.kv_dim();
        let f = self.ffn_hidden;
        [
            ("attn_q", h, h),
            ("attn_k", h, kv),
            ("attn_v", h, kv),
            ("attn_o", h, h),
            ("mlp_gate", h, f),
            ("mlp_up", h, f),
            ("mlp_down", f, h),
        ]
    }

    /// Frozen parameter count of one decoder layer.
    pub fn layer_params(&self) -> u64 {
        self.lora_linears()
            .iter()
            .map(|&(_, k, n)| (k * n) as u64)
            .sum::<u64>()
            + 2 * self.hidden as u64 // The two RMSNorm weights.
    }

    /// Total frozen parameters (decoder stack + embeddings + LM head).
    pub fn total_params(&self) -> u64 {
        self.layer_params() * self.layers as u64
            + 2 * (self.vocab as u64 * self.hidden as u64) // Embed + head.
            + self.hidden as u64 // Final norm.
    }

    /// Trainable LoRA parameters per adapter at rank `r` (all seven
    /// target modules).
    pub fn lora_params(&self, rank: usize) -> u64 {
        self.lora_linears()
            .iter()
            .map(|&(_, k, n)| (rank * (k + n)) as u64)
            .sum::<u64>()
            * self.layers as u64
    }
}

/// The three models of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelPreset {
    /// LLaMa-3.1-8B.
    Llama8b,
    /// Qwen-2.5-32B.
    Qwen32b,
    /// LLaMa-3.1-70B.
    Llama70b,
}

impl ModelPreset {
    /// All presets in paper order.
    pub const ALL: [ModelPreset; 3] = [
        ModelPreset::Llama8b,
        ModelPreset::Qwen32b,
        ModelPreset::Llama70b,
    ];

    /// Architecture parameters (public model cards).
    pub fn config(self) -> TransformerConfig {
        match self {
            ModelPreset::Llama8b => TransformerConfig {
                name: "LLaMa-3.1-8B",
                layers: 32,
                hidden: 4096,
                ffn_hidden: 14336,
                heads: 32,
                kv_heads: 8,
                vocab: 128_256,
            },
            ModelPreset::Qwen32b => TransformerConfig {
                name: "Qwen-2.5-32B",
                layers: 64,
                hidden: 5120,
                ffn_hidden: 27_648,
                heads: 40,
                kv_heads: 8,
                vocab: 152_064,
            },
            ModelPreset::Llama70b => TransformerConfig {
                name: "LLaMa-3.1-70B",
                layers: 80,
                hidden: 8192,
                ffn_hidden: 28_672,
                heads: 64,
                kv_heads: 8,
                vocab: 128_256,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_match_model_cards() {
        // Within a few percent of the published totals.
        let b = |p: ModelPreset| p.config().total_params() as f64 / 1e9;
        assert!(
            (b(ModelPreset::Llama8b) - 8.0).abs() < 0.5,
            "{}",
            b(ModelPreset::Llama8b)
        );
        assert!(
            (b(ModelPreset::Qwen32b) - 32.5).abs() < 2.0,
            "{}",
            b(ModelPreset::Qwen32b)
        );
        assert!(
            (b(ModelPreset::Llama70b) - 70.5).abs() < 2.0,
            "{}",
            b(ModelPreset::Llama70b)
        );
    }

    #[test]
    fn lora_params_are_tiny_fraction() {
        // Section 2.1: rank 16 adds ~0.29% parameters on 70B.
        let cfg = ModelPreset::Llama70b.config();
        let frac = cfg.lora_params(16) as f64 / cfg.total_params() as f64;
        assert!(frac < 0.005, "lora fraction {frac}");
        assert!(frac > 0.0005);
    }

    #[test]
    fn gqa_shapes() {
        let cfg = ModelPreset::Llama8b.config();
        assert_eq!(cfg.head_dim(), 128);
        assert_eq!(cfg.kv_dim(), 1024);
        let linears = cfg.lora_linears();
        assert_eq!(linears[1], ("attn_k", 4096, 1024));
        assert_eq!(linears[4], ("mlp_gate", 4096, 14336));
    }
}
