//! Distributed LoRA fine-tuning simulator.
//!
//! Reproduces the paper's evaluation substrate: Megatron-LM-style training
//! of LLaMa/Qwen models on multi-GPU clusters, without the GPUs. The
//! kernel layer (`lorafusion-kernels` + `lorafusion-gpu`) supplies
//! per-microbatch compute times and DRAM traffic; this crate adds
//!
//! * [`model_config`] — transformer architectures (LLaMa-3.1-8B,
//!   Qwen-2.5-32B, LLaMa-3.1-70B) and their LoRA target modules;
//! * [`cluster`] — GPU clusters and interconnects (NVLink, PCIe,
//!   InfiniBand);
//! * [`collective`] — alpha-beta cost models for all-gather,
//!   reduce-scatter, all-reduce and P2P;
//! * [`memory`] — GPU memory accounting (model states, optimizer,
//!   activations) and OOM detection;
//! * [`layer_cost`] — decoder-layer and microbatch cost lowering per
//!   kernel strategy;
//! * [`pipeline`] — event-driven 1F1B pipeline simulation with optional
//!   per-global-batch flushes and the multi-LoRA zero-bubble stream;
//! * [`fsdp`] — FSDP step simulation with compute/communication overlap;
//! * [`baselines`] — the four systems of Fig. 14: Megatron-LM (FSDP),
//!   Megatron-LM (PP), mLoRA, and LoRAFusion.

pub mod baselines;
pub mod cluster;
pub mod collective;
pub mod fsdp;
pub mod layer_cost;
pub mod memory;
pub mod model_config;
pub mod pipeline;

pub use baselines::{SystemKind, SystemResult};
pub use cluster::{ClusterSpec, Link};
pub use layer_cost::{KernelStrategy, MicrobatchCost};
pub use model_config::{ModelPreset, TransformerConfig};
pub use pipeline::{simulate_pipeline, PipelineOptions, PipelineResult};
