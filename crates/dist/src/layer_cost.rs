//! Microbatch cost lowering: decoder layers to kernel profiles to seconds.

use lorafusion_gpu::{CostModel, DeviceSpec, KernelClass, KernelProfile};
use lorafusion_kernels::{frozen, fused, reference, Shape, TrafficModel};

use crate::model_config::TransformerConfig;

/// Which kernel implementation executes the LoRA linear layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelStrategy {
    /// No adapter (the frozen baseline of Fig. 3).
    Frozen,
    /// Unfused PEFT-style kernels (Megatron-LM and mLoRA baselines).
    TorchLora,
    /// Split-graph FusedLoRA (single adapter per microbatch).
    FusedLora,
    /// FusedMultiLoRA with `adapters` distinct adapters routed per tile.
    FusedMultiLora {
        /// Distinct adapters in the microbatch.
        adapters: u32,
    },
}

/// What a pipeline stage hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageShape {
    /// Decoder layers on this stage.
    pub layers: usize,
    /// Whether the input embedding lives here (first stage).
    pub has_embedding: bool,
    /// Whether the LM head and loss live here (last stage).
    pub has_lm_head: bool,
}

/// Per-stage forward/backward seconds of one microbatch.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrobatchCost {
    /// Forward seconds per stage.
    pub fwd: Vec<f64>,
    /// Backward seconds per stage.
    pub bwd: Vec<f64>,
    /// Real tokens in the microbatch.
    pub tokens: usize,
}

impl MicrobatchCost {
    /// Total compute seconds across stages (fwd + bwd).
    pub fn total(&self) -> f64 {
        self.fwd.iter().sum::<f64>() + self.bwd.iter().sum::<f64>()
    }
}

fn retag_adapters(mut profiles: Vec<KernelProfile>, adapters: u32) -> Vec<KernelProfile> {
    for p in &mut profiles {
        if let KernelClass::FusedGemm { m, k, n, .. } = p.class {
            p.class = KernelClass::FusedGemm { m, k, n, adapters };
        }
    }
    profiles
}

/// Kernel profiles of one LoRA linear layer under `strategy`.
pub fn linear_profiles(
    strategy: KernelStrategy,
    shape: Shape,
    t: &TrafficModel,
) -> (Vec<KernelProfile>, Vec<KernelProfile>) {
    match strategy {
        KernelStrategy::Frozen => (
            frozen::forward_profiles(shape, t),
            frozen::backward_profiles(shape, t),
        ),
        KernelStrategy::TorchLora => (
            reference::forward_profiles(shape, t),
            reference::backward_profiles(shape, t),
        ),
        KernelStrategy::FusedLora => (
            fused::forward_profiles(shape, t),
            fused::backward_profiles(shape, t),
        ),
        KernelStrategy::FusedMultiLora { adapters } => (
            retag_adapters(fused::forward_profiles(shape, t), adapters),
            retag_adapters(fused::backward_profiles(shape, t), adapters),
        ),
    }
}

/// Attention + norm + activation profiles for one decoder layer over
/// `tokens` tokens whose per-sample squared lengths sum to `sum_sq_len`
/// (FlashAttention cost is quadratic per document).
fn layer_misc_profiles(
    cfg: &TransformerConfig,
    tokens: usize,
    sum_sq_len: u64,
    t: &TrafficModel,
) -> (Vec<KernelProfile>, Vec<KernelProfile>) {
    let h = cfg.hidden;
    let kv = cfg.kv_dim();
    let f = cfg.ffn_hidden;
    let e = 2u64;
    let m = tokens as u64;

    // FlashAttention: QK^T and PV are each 2 * sum_sq * h FLOPs.
    let attn_flops_fwd = 4.0 * sum_sq_len as f64 * h as f64;
    let attn_fwd = KernelProfile {
        name: "flash_attention_fwd".into(),
        class: KernelClass::Gemm {
            m,
            k: h as u64,
            n: 128,
        },
        flops: attn_flops_fwd,
        bytes_read: (m * h as u64 + 2 * m * kv as u64) * e,
        bytes_written: m * h as u64 * e,
    };
    let attn_bwd = KernelProfile {
        name: "flash_attention_bwd".into(),
        class: KernelClass::Gemm {
            m,
            k: h as u64,
            n: 128,
        },
        flops: attn_flops_fwd * 2.5,
        bytes_read: (3 * m * h as u64 + 4 * m * kv as u64) * e,
        bytes_written: (m * h as u64 + 2 * m * kv as u64) * e,
    };
    // Norms, rotary, SwiGLU, residuals lumped as streaming elementwise.
    let misc_bytes_fwd = e * m * (10 * h as u64 + 3 * f as u64);
    let misc_fwd = KernelProfile {
        name: "layer_elementwise_fwd".into(),
        class: KernelClass::Elementwise { tensors: 4 },
        flops: (m * (h as u64 + f as u64)) as f64,
        bytes_read: misc_bytes_fwd / 2,
        bytes_written: misc_bytes_fwd / 2,
    };
    let misc_bytes_bwd = (misc_bytes_fwd as f64 * 1.2) as u64;
    let misc_bwd = KernelProfile {
        name: "layer_elementwise_bwd".into(),
        class: KernelClass::Elementwise { tensors: 4 },
        flops: (m * (h as u64 + f as u64)) as f64,
        bytes_read: misc_bytes_bwd / 2,
        bytes_written: misc_bytes_bwd / 2,
    };
    let _ = t;
    (vec![attn_fwd, misc_fwd], vec![attn_bwd, misc_bwd])
}

/// LM-head + cross-entropy profiles (last stage only).
fn lm_head_profiles(
    cfg: &TransformerConfig,
    tokens: usize,
    t: &TrafficModel,
) -> (Vec<KernelProfile>, Vec<KernelProfile>) {
    let shape = Shape::new(tokens, cfg.hidden, cfg.vocab, 0);
    let mut fwd = frozen::forward_profiles(shape, t);
    fwd[0].name = "lm_head_fwd".into();
    let ce = KernelProfile {
        name: "cross_entropy".into(),
        class: KernelClass::Reduction,
        flops: (tokens * cfg.vocab) as f64,
        bytes_read: (tokens * cfg.vocab) as u64 * 2,
        bytes_written: tokens as u64 * 4,
    };
    fwd.push(ce);
    let mut bwd = frozen::backward_profiles(shape, t);
    bwd[0].name = "lm_head_bwd".into();
    (fwd, bwd)
}

/// Computes per-stage forward/backward seconds for one microbatch.
///
/// `stages` describes the pipeline partition (length 1 = no pipeline).
/// `rank` is the LoRA rank (ignored for [`KernelStrategy::Frozen`]).
#[allow(clippy::too_many_arguments)]
pub fn microbatch_cost(
    cfg: &TransformerConfig,
    strategy: KernelStrategy,
    tokens: usize,
    sum_sq_len: u64,
    stages: &[StageShape],
    rank: usize,
    device: &DeviceSpec,
    cost: &CostModel,
    traffic: &TrafficModel,
) -> MicrobatchCost {
    let mut fwd = Vec::with_capacity(stages.len());
    let mut bwd = Vec::with_capacity(stages.len());

    // Per-decoder-layer profile set (shared by every layer).
    let mut layer_fwd: Vec<KernelProfile> = Vec::new();
    let mut layer_bwd: Vec<KernelProfile> = Vec::new();
    for (_, k, n) in cfg.lora_linears() {
        let shape = Shape::new(tokens, k, n, rank.max(1));
        let (f, b) = linear_profiles(strategy, shape, traffic);
        layer_fwd.extend(f);
        layer_bwd.extend(b);
    }
    let (misc_fwd, misc_bwd) = layer_misc_profiles(cfg, tokens, sum_sq_len, traffic);
    layer_fwd.extend(misc_fwd);
    layer_bwd.extend(misc_bwd);

    let layer_fwd_s = cost.sequence_seconds(device, &layer_fwd);
    let layer_bwd_s = cost.sequence_seconds(device, &layer_bwd);

    for stage in stages {
        let mut f = layer_fwd_s * stage.layers as f64;
        let mut b = layer_bwd_s * stage.layers as f64;
        if stage.has_embedding {
            // Embedding lookup: one streaming pass over token embeddings.
            f += (tokens * cfg.hidden) as f64 * 2.0
                / (device.bandwidth_bytes() * cost.elementwise_mem_efficiency);
        }
        if stage.has_lm_head {
            let (hf, hb) = lm_head_profiles(cfg, tokens, traffic);
            f += cost.sequence_seconds(device, &hf);
            b += cost.sequence_seconds(device, &hb);
        }
        fwd.push(f);
        bwd.push(b);
    }
    MicrobatchCost { fwd, bwd, tokens }
}

/// Builds an even pipeline partition of `cfg.layers` over `s` stages, with
/// the embedding on the first and the LM head on the last stage.
pub fn even_stages(cfg: &TransformerConfig, s: usize) -> Vec<StageShape> {
    let s = s.max(1);
    let base = cfg.layers / s;
    let extra = cfg.layers % s;
    (0..s)
        .map(|i| StageShape {
            layers: base + usize::from(i < extra),
            has_embedding: i == 0,
            has_lm_head: i == s - 1,
        })
        .collect()
}

/// Sum of squared sample lengths for a uniform split of `tokens` into
/// `samples` equal documents (attention cost helper).
pub fn uniform_sum_sq(tokens: usize, samples: usize) -> u64 {
    let samples = samples.max(1);
    let len = tokens / samples;
    (samples as u64) * (len as u64) * (len as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_config::ModelPreset;
    use lorafusion_gpu::DeviceKind;

    fn setup() -> (TransformerConfig, DeviceSpec, CostModel, TrafficModel) {
        let dev = DeviceKind::H100Sxm.spec();
        (
            ModelPreset::Llama8b.config(),
            dev,
            CostModel::default(),
            TrafficModel::for_device(&dev),
        )
    }

    #[test]
    fn even_stage_partition() {
        let cfg = ModelPreset::Llama70b.config();
        let stages = even_stages(&cfg, 4);
        assert_eq!(stages.len(), 4);
        assert_eq!(stages.iter().map(|s| s.layers).sum::<usize>(), 80);
        assert!(stages[0].has_embedding && !stages[0].has_lm_head);
        assert!(stages[3].has_lm_head && !stages[3].has_embedding);
    }

    #[test]
    fn torch_lora_is_slower_than_frozen_and_fused() {
        let (cfg, dev, cost, traffic) = setup();
        let stages = even_stages(&cfg, 1);
        let run = |s: KernelStrategy| {
            microbatch_cost(
                &cfg,
                s,
                8192,
                uniform_sum_sq(8192, 8),
                &stages,
                16,
                &dev,
                &cost,
                &traffic,
            )
            .total()
        };
        let frozen = run(KernelStrategy::Frozen);
        let torch = run(KernelStrategy::TorchLora);
        let fused = run(KernelStrategy::FusedLora);
        let multi = run(KernelStrategy::FusedMultiLora { adapters: 4 });
        assert!(torch > frozen, "torch {torch} frozen {frozen}");
        assert!(fused < torch, "fused {fused} torch {torch}");
        assert!(multi >= fused, "multi {multi} fused {fused}");
        assert!(multi < torch);
        // Whole-layer speedup is diluted by attention/misc: Fig. 18's
        // 1.1-1.3x band.
        let speedup = torch / fused;
        assert!((1.03..1.45).contains(&speedup), "layer speedup {speedup}");
    }

    #[test]
    fn last_stage_costs_more() {
        // The LM head + loss make the last stage slower (Fig. 20's
        // residual-bubble explanation).
        let (cfg, dev, cost, traffic) = setup();
        let stages = even_stages(&cfg, 4);
        let mb = microbatch_cost(
            &cfg,
            KernelStrategy::FusedLora,
            4096,
            uniform_sum_sq(4096, 4),
            &stages,
            16,
            &dev,
            &cost,
            &traffic,
        );
        assert!(mb.fwd[3] > mb.fwd[1] * 1.05);
    }

    #[test]
    fn cost_scales_roughly_linearly_with_tokens() {
        let (cfg, dev, cost, traffic) = setup();
        let stages = even_stages(&cfg, 1);
        let run = |tokens: usize| {
            microbatch_cost(
                &cfg,
                KernelStrategy::FusedLora,
                tokens,
                uniform_sum_sq(tokens, tokens / 1024),
                &stages,
                16,
                &dev,
                &cost,
                &traffic,
            )
            .total()
        };
        let t1 = run(4096);
        let t2 = run(8192);
        assert!(t2 > t1 * 1.7 && t2 < t1 * 2.6, "t1 {t1} t2 {t2}");
    }
}
