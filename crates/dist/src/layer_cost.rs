//! Microbatch cost lowering: decoder layers to kernel profiles to seconds.
//!
//! # Memoization
//!
//! [`microbatch_cost`] is called once per microbatch by the baseline
//! evaluators, the pipeline/FSDP simulators and the planner's capacity
//! sweep — thousands of times per figure run — but the expensive parts
//! (the seven LoRA linear profiles per decoder layer and the LM-head
//! profiles) depend only on (model config, kernel strategy, padded token
//! count, rank, device, cost/traffic model). Those per-layer seconds are
//! cached process-wide; only the attention/elementwise profiles, which
//! depend on the microbatch's `sum_sq_len`, are lowered per call. The fold
//! order of the cached and fresh terms matches the uncached code exactly,
//! so memoized results are bitwise-identical. Hit statistics are exposed
//! via [`cost_cache_stats`].

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use lorafusion_trace::metrics::{counter, Counter};

use lorafusion_gpu::{CostModel, DeviceSpec, KernelClass, KernelProfile};
use lorafusion_kernels::{frozen, fused, loss, reference, Shape, TrafficModel};

use crate::model_config::TransformerConfig;

/// Which kernel implementation executes the LoRA linear layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelStrategy {
    /// No adapter (the frozen baseline of Fig. 3).
    Frozen,
    /// Unfused PEFT-style kernels (Megatron-LM and mLoRA baselines).
    TorchLora,
    /// Split-graph FusedLoRA (single adapter per microbatch).
    FusedLora,
    /// FusedMultiLoRA with `adapters` distinct adapters routed per tile.
    FusedMultiLora {
        /// Distinct adapters in the microbatch.
        adapters: u32,
    },
}

/// What a pipeline stage hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageShape {
    /// Decoder layers on this stage.
    pub layers: usize,
    /// Whether the input embedding lives here (first stage).
    pub has_embedding: bool,
    /// Whether the LM head and loss live here (last stage).
    pub has_lm_head: bool,
}

/// Per-stage forward/backward seconds of one microbatch.
#[derive(Debug, Clone, PartialEq)]
pub struct MicrobatchCost {
    /// Forward seconds per stage.
    pub fwd: Vec<f64>,
    /// Backward seconds per stage.
    pub bwd: Vec<f64>,
    /// Real tokens in the microbatch.
    pub tokens: usize,
}

impl MicrobatchCost {
    /// Total compute seconds across stages (fwd + bwd).
    pub fn total(&self) -> f64 {
        self.fwd.iter().sum::<f64>() + self.bwd.iter().sum::<f64>()
    }
}

fn retag_adapters(mut profiles: Vec<KernelProfile>, adapters: u32) -> Vec<KernelProfile> {
    for p in &mut profiles {
        if let KernelClass::FusedGemm { m, k, n, .. } = p.class {
            p.class = KernelClass::FusedGemm { m, k, n, adapters };
        }
    }
    profiles
}

/// Kernel profiles of one LoRA linear layer under `strategy`.
pub fn linear_profiles(
    strategy: KernelStrategy,
    shape: Shape,
    t: &TrafficModel,
) -> (Vec<KernelProfile>, Vec<KernelProfile>) {
    match strategy {
        KernelStrategy::Frozen => (
            frozen::forward_profiles(shape, t),
            frozen::backward_profiles(shape, t),
        ),
        KernelStrategy::TorchLora => (
            reference::forward_profiles(shape, t),
            reference::backward_profiles(shape, t),
        ),
        KernelStrategy::FusedLora => (
            fused::forward_profiles(shape, t),
            fused::backward_profiles(shape, t),
        ),
        KernelStrategy::FusedMultiLora { adapters } => (
            retag_adapters(fused::forward_profiles(shape, t), adapters),
            retag_adapters(fused::backward_profiles(shape, t), adapters),
        ),
    }
}

/// Attention + norm + activation profiles for one decoder layer over
/// `tokens` tokens whose per-sample squared lengths sum to `sum_sq_len`
/// (FlashAttention cost is quadratic per document).
fn layer_misc_profiles(
    cfg: &TransformerConfig,
    tokens: usize,
    sum_sq_len: u64,
    t: &TrafficModel,
) -> (Vec<KernelProfile>, Vec<KernelProfile>) {
    let h = cfg.hidden;
    let kv = cfg.kv_dim();
    let f = cfg.ffn_hidden;
    let e = 2u64;
    let m = tokens as u64;

    // FlashAttention: QK^T and PV are each 2 * sum_sq * h FLOPs.
    let attn_flops_fwd = 4.0 * sum_sq_len as f64 * h as f64;
    let attn_fwd = KernelProfile {
        name: "flash_attention_fwd".into(),
        class: KernelClass::Gemm {
            m,
            k: h as u64,
            n: 128,
        },
        flops: attn_flops_fwd,
        bytes_read: (m * h as u64 + 2 * m * kv as u64) * e,
        bytes_written: m * h as u64 * e,
    };
    let attn_bwd = KernelProfile {
        name: "flash_attention_bwd".into(),
        class: KernelClass::Gemm {
            m,
            k: h as u64,
            n: 128,
        },
        flops: attn_flops_fwd * 2.5,
        bytes_read: (3 * m * h as u64 + 4 * m * kv as u64) * e,
        bytes_written: (m * h as u64 + 2 * m * kv as u64) * e,
    };
    // Norms, rotary, SwiGLU, residuals lumped as streaming elementwise.
    let misc_bytes_fwd = e * m * (10 * h as u64 + 3 * f as u64);
    let misc_fwd = KernelProfile {
        name: "layer_elementwise_fwd".into(),
        class: KernelClass::Elementwise { tensors: 4 },
        flops: (m * (h as u64 + f as u64)) as f64,
        bytes_read: misc_bytes_fwd / 2,
        bytes_written: misc_bytes_fwd / 2,
    };
    let misc_bytes_bwd = (misc_bytes_fwd as f64 * 1.2) as u64;
    let misc_bwd = KernelProfile {
        name: "layer_elementwise_bwd".into(),
        class: KernelClass::Elementwise { tensors: 4 },
        flops: (m * (h as u64 + f as u64)) as f64,
        bytes_read: misc_bytes_bwd / 2,
        bytes_written: misc_bytes_bwd / 2,
    };
    let _ = t;
    (vec![attn_fwd, misc_fwd], vec![attn_bwd, misc_bwd])
}

/// LM-head + cross-entropy profiles (last stage only).
///
/// The fused strategies run the Liger-style chunked linear+CE lowering
/// ([`loss::fused_profiles`]) at the roofline-neutral
/// [`loss::SIM_CHUNK_TOKENS`] chunk size; the unfused strategies
/// materialize full logits ([`loss::unfused_profiles`]). Every byte is
/// routed through the [`TrafficModel`] — there are no hand-written byte
/// counts here.
fn lm_head_profiles(
    cfg: &TransformerConfig,
    strategy: KernelStrategy,
    tokens: usize,
    t: &TrafficModel,
) -> (Vec<KernelProfile>, Vec<KernelProfile>) {
    match strategy {
        KernelStrategy::FusedLora | KernelStrategy::FusedMultiLora { .. } => {
            loss::fused_profiles(tokens, cfg.hidden, cfg.vocab, loss::SIM_CHUNK_TOKENS, t)
        }
        KernelStrategy::Frozen | KernelStrategy::TorchLora => {
            loss::unfused_profiles(tokens, cfg.hidden, cfg.vocab, t)
        }
    }
}

/// Key of the memoized per-layer seconds: everything [`microbatch_cost`]
/// depends on *except* `sum_sq_len` (which only shapes the per-call
/// attention profiles) and the stage partition (applied per stage from the
/// cached per-layer values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct CostCacheKey {
    cfg: TransformerConfig,
    strategy: KernelStrategy,
    tokens: usize,
    rank: usize,
    device: &'static str,
    /// Fingerprint of the device/cost/traffic model floats, so a tweaked
    /// [`CostModel`] never aliases a cached entry for the default one.
    env_bits: u64,
}

/// Cached expensive sub-sums of one (`cfg`, `tokens`, …) configuration.
#[derive(Debug, Clone, Copy)]
struct CachedSeconds {
    /// Fold over the seven LoRA linear layers' forward profiles.
    linear_fwd: f64,
    /// Fold over the seven LoRA linear layers' backward profiles.
    linear_bwd: f64,
    /// Fold over the LM-head + cross-entropy forward profiles.
    lm_head_fwd: f64,
    /// Fold over the LM-head backward profiles.
    lm_head_bwd: f64,
}

/// Hit/miss counters of the layer-cost cache (process lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostCacheStats {
    pub hits: u64,
    pub misses: u64,
}

impl CostCacheStats {
    /// Fraction of lookups served from cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

static COST_CACHE: OnceLock<Mutex<BTreeMap<CostCacheKey, CachedSeconds>>> = OnceLock::new();

fn cost_cache() -> &'static Mutex<BTreeMap<CostCacheKey, CachedSeconds>> {
    COST_CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Hit/miss counters, hosted on the `lorafusion-trace` metrics registry
/// (`layer_cost.cache_hits` / `layer_cost.cache_misses`) so they show up
/// in metrics snapshots and Perfetto counter tracks for free.
fn cache_counters() -> (Counter, Counter) {
    static CELLS: OnceLock<(Counter, Counter)> = OnceLock::new();
    *CELLS.get_or_init(|| {
        (
            counter("layer_cost.cache_hits"),
            counter("layer_cost.cache_misses"),
        )
    })
}

/// Current hit/miss counters of the layer-cost cache.
///
/// Compatibility shim over the metrics registry; prefer reading the
/// registry (`lorafusion_trace::metrics::metrics_snapshot`) directly in
/// new code.
pub fn cost_cache_stats() -> CostCacheStats {
    let (hits, misses) = cache_counters();
    CostCacheStats {
        hits: hits.get(),
        misses: misses.get(),
    }
}

/// Resets the hit/miss counters (the cached entries stay valid).
pub fn reset_cost_cache_stats() {
    let (hits, misses) = cache_counters();
    hits.reset();
    misses.reset();
}

/// FNV-1a over the bit patterns of the floats that shape kernel costs.
fn env_fingerprint(device: &DeviceSpec, cost: &CostModel, traffic: &TrafficModel) -> u64 {
    let values = [
        device.peak_half_tflops.to_bits(),
        device.mem_bandwidth_gbs.to_bits(),
        device.l2_cache_mib.to_bits(),
        device.launch_overhead_us.to_bits(),
        u64::from(device.sm_count),
        cost.gemm_base_efficiency.to_bits(),
        cost.gemm_m_half.to_bits(),
        cost.gemm_kn_half.to_bits(),
        cost.gemm_mem_efficiency.to_bits(),
        cost.elementwise_mem_efficiency.to_bits(),
        cost.fused_epilogue_penalty.to_bits(),
        cost.multi_adapter_overhead.to_bits(),
        traffic.dtype as u64,
        traffic.mask_bytes,
        traffic.gemm_input_reread.to_bits(),
        traffic.reread_min_n as u64,
        traffic.l2_reuse.to_bits(),
        traffic.l2_bytes,
    ];
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Computes the cacheable sub-sums for one key (the cache-miss path).
fn compute_cached_seconds(
    cfg: &TransformerConfig,
    strategy: KernelStrategy,
    tokens: usize,
    rank: usize,
    device: &DeviceSpec,
    cost: &CostModel,
    traffic: &TrafficModel,
) -> CachedSeconds {
    let mut linear_fwd_profiles: Vec<KernelProfile> = Vec::new();
    let mut linear_bwd_profiles: Vec<KernelProfile> = Vec::new();
    for (_, k, n) in cfg.lora_linears() {
        let shape = Shape::new(tokens, k, n, rank.max(1));
        let (f, b) = linear_profiles(strategy, shape, traffic);
        linear_fwd_profiles.extend(f);
        linear_bwd_profiles.extend(b);
    }
    let (hf, hb) = lm_head_profiles(cfg, strategy, tokens, traffic);
    CachedSeconds {
        linear_fwd: cost.sequence_seconds(device, &linear_fwd_profiles),
        linear_bwd: cost.sequence_seconds(device, &linear_bwd_profiles),
        lm_head_fwd: cost.sequence_seconds(device, &hf),
        lm_head_bwd: cost.sequence_seconds(device, &hb),
    }
}

/// Computes per-stage forward/backward seconds for one microbatch.
///
/// `stages` describes the pipeline partition (length 1 = no pipeline).
/// `rank` is the LoRA rank (ignored for [`KernelStrategy::Frozen`]).
///
/// The linear-layer and LM-head sub-sums are memoized (see the module
/// docs); the result is bitwise-identical to an uncached evaluation
/// because [`CostModel::sequence_seconds`] is a left fold in profile order
/// and the cached prefix (linears) precedes the fresh suffix
/// (attention/elementwise) exactly as in the profile list it replaces.
#[allow(clippy::too_many_arguments)]
pub fn microbatch_cost(
    cfg: &TransformerConfig,
    strategy: KernelStrategy,
    tokens: usize,
    sum_sq_len: u64,
    stages: &[StageShape],
    rank: usize,
    device: &DeviceSpec,
    cost: &CostModel,
    traffic: &TrafficModel,
) -> MicrobatchCost {
    let key = CostCacheKey {
        cfg: *cfg,
        strategy,
        tokens,
        rank,
        device: device.name,
        env_bits: env_fingerprint(device, cost, traffic),
    };
    let (cache_hits, cache_misses) = cache_counters();
    let cached = {
        let mut cache = cost_cache().lock().unwrap();
        match cache.get(&key) {
            Some(entry) => {
                cache_hits.incr();
                *entry
            }
            None => {
                cache_misses.incr();
                let entry =
                    compute_cached_seconds(cfg, strategy, tokens, rank, device, cost, traffic);
                cache.insert(key, entry);
                entry
            }
        }
    };

    // Continue the per-layer fold with the microbatch-specific
    // attention/elementwise profiles, in the same order as the uncached
    // concatenated profile list.
    let (misc_fwd, misc_bwd) = layer_misc_profiles(cfg, tokens, sum_sq_len, traffic);
    let mut layer_fwd_s = cached.linear_fwd;
    for p in &misc_fwd {
        layer_fwd_s += cost.kernel_cost(device, p).seconds;
    }
    let mut layer_bwd_s = cached.linear_bwd;
    for p in &misc_bwd {
        layer_bwd_s += cost.kernel_cost(device, p).seconds;
    }

    let mut fwd = Vec::with_capacity(stages.len());
    let mut bwd = Vec::with_capacity(stages.len());
    for stage in stages {
        let mut f = layer_fwd_s * stage.layers as f64;
        let mut b = layer_bwd_s * stage.layers as f64;
        if stage.has_embedding {
            // Embedding lookup: one streaming pass over token embeddings.
            f += (tokens * cfg.hidden) as f64 * 2.0
                / (device.bandwidth_bytes() * cost.elementwise_mem_efficiency);
        }
        if stage.has_lm_head {
            f += cached.lm_head_fwd;
            b += cached.lm_head_bwd;
        }
        fwd.push(f);
        bwd.push(b);
    }
    MicrobatchCost { fwd, bwd, tokens }
}

/// Builds an even pipeline partition of `cfg.layers` over `s` stages, with
/// the embedding on the first and the LM head on the last stage.
pub fn even_stages(cfg: &TransformerConfig, s: usize) -> Vec<StageShape> {
    let s = s.max(1);
    let base = cfg.layers / s;
    let extra = cfg.layers % s;
    (0..s)
        .map(|i| StageShape {
            layers: base + usize::from(i < extra),
            has_embedding: i == 0,
            has_lm_head: i == s - 1,
        })
        .collect()
}

/// Sum of squared sample lengths for a uniform split of `tokens` into
/// `samples` equal documents (attention cost helper).
pub fn uniform_sum_sq(tokens: usize, samples: usize) -> u64 {
    let samples = samples.max(1);
    let len = tokens / samples;
    (samples as u64) * (len as u64) * (len as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_config::ModelPreset;
    use lorafusion_gpu::DeviceKind;

    fn setup() -> (TransformerConfig, DeviceSpec, CostModel, TrafficModel) {
        let dev = DeviceKind::H100Sxm.spec();
        (
            ModelPreset::Llama8b.config(),
            dev,
            CostModel::default(),
            TrafficModel::for_device(&dev),
        )
    }

    #[test]
    fn even_stage_partition() {
        let cfg = ModelPreset::Llama70b.config();
        let stages = even_stages(&cfg, 4);
        assert_eq!(stages.len(), 4);
        assert_eq!(stages.iter().map(|s| s.layers).sum::<usize>(), 80);
        assert!(stages[0].has_embedding && !stages[0].has_lm_head);
        assert!(stages[3].has_lm_head && !stages[3].has_embedding);
    }

    #[test]
    fn torch_lora_is_slower_than_frozen_and_fused() {
        let (cfg, dev, cost, traffic) = setup();
        let stages = even_stages(&cfg, 1);
        let run = |s: KernelStrategy| {
            microbatch_cost(
                &cfg,
                s,
                8192,
                uniform_sum_sq(8192, 8),
                &stages,
                16,
                &dev,
                &cost,
                &traffic,
            )
            .total()
        };
        let frozen = run(KernelStrategy::Frozen);
        let torch = run(KernelStrategy::TorchLora);
        let fused = run(KernelStrategy::FusedLora);
        let multi = run(KernelStrategy::FusedMultiLora { adapters: 4 });
        assert!(torch > frozen, "torch {torch} frozen {frozen}");
        assert!(fused < torch, "fused {fused} torch {torch}");
        assert!(multi >= fused, "multi {multi} fused {fused}");
        assert!(multi < torch);
        // Whole-layer speedup is diluted by attention/misc: Fig. 18's
        // 1.1-1.3x band.
        let speedup = torch / fused;
        assert!((1.03..1.45).contains(&speedup), "layer speedup {speedup}");
    }

    #[test]
    fn last_stage_costs_more() {
        // The LM head + loss make the last stage slower (Fig. 20's
        // residual-bubble explanation).
        let (cfg, dev, cost, traffic) = setup();
        let stages = even_stages(&cfg, 4);
        let mb = microbatch_cost(
            &cfg,
            KernelStrategy::FusedLora,
            4096,
            uniform_sum_sq(4096, 4),
            &stages,
            16,
            &dev,
            &cost,
            &traffic,
        );
        assert!(mb.fwd[3] > mb.fwd[1] * 1.05);
    }

    /// Replicates the pre-memoization lowering: one concatenated profile
    /// list per layer, summed in order.
    #[allow(clippy::too_many_arguments)]
    fn uncached_cost(
        cfg: &TransformerConfig,
        strategy: KernelStrategy,
        tokens: usize,
        sum_sq_len: u64,
        stages: &[StageShape],
        rank: usize,
        device: &DeviceSpec,
        cost: &CostModel,
        traffic: &TrafficModel,
    ) -> MicrobatchCost {
        let mut layer_fwd: Vec<KernelProfile> = Vec::new();
        let mut layer_bwd: Vec<KernelProfile> = Vec::new();
        for (_, k, n) in cfg.lora_linears() {
            let shape = Shape::new(tokens, k, n, rank.max(1));
            let (f, b) = linear_profiles(strategy, shape, traffic);
            layer_fwd.extend(f);
            layer_bwd.extend(b);
        }
        let (misc_fwd, misc_bwd) = layer_misc_profiles(cfg, tokens, sum_sq_len, traffic);
        layer_fwd.extend(misc_fwd);
        layer_bwd.extend(misc_bwd);
        let layer_fwd_s = cost.sequence_seconds(device, &layer_fwd);
        let layer_bwd_s = cost.sequence_seconds(device, &layer_bwd);
        let mut fwd = Vec::new();
        let mut bwd = Vec::new();
        for stage in stages {
            let mut f = layer_fwd_s * stage.layers as f64;
            let mut b = layer_bwd_s * stage.layers as f64;
            if stage.has_embedding {
                f += (tokens * cfg.hidden) as f64 * 2.0
                    / (device.bandwidth_bytes() * cost.elementwise_mem_efficiency);
            }
            if stage.has_lm_head {
                let (hf, hb) = lm_head_profiles(cfg, strategy, tokens, traffic);
                f += cost.sequence_seconds(device, &hf);
                b += cost.sequence_seconds(device, &hb);
            }
            fwd.push(f);
            bwd.push(b);
        }
        MicrobatchCost { fwd, bwd, tokens }
    }

    #[test]
    fn memoized_cost_is_bitwise_identical_to_uncached() {
        let (cfg, dev, cost, traffic) = setup();
        let stages = even_stages(&cfg, 4);
        let cases = [
            (
                4096usize,
                uniform_sum_sq(4096, 4),
                KernelStrategy::FusedLora,
            ),
            (4096, uniform_sum_sq(4096, 16), KernelStrategy::FusedLora),
            (8192, uniform_sum_sq(8192, 8), KernelStrategy::TorchLora),
            (
                2048,
                uniform_sum_sq(2048, 2),
                KernelStrategy::FusedMultiLora { adapters: 4 },
            ),
        ];
        for &(tokens, ssq, strategy) in &cases {
            // Twice, so the second call exercises the cache-hit path.
            for _ in 0..2 {
                let memo = microbatch_cost(
                    &cfg, strategy, tokens, ssq, &stages, 16, &dev, &cost, &traffic,
                );
                let plain = uncached_cost(
                    &cfg, strategy, tokens, ssq, &stages, 16, &dev, &cost, &traffic,
                );
                for (a, b) in memo.fwd.iter().zip(&plain.fwd) {
                    assert_eq!(a.to_bits(), b.to_bits(), "fwd mismatch at {tokens} tokens");
                }
                for (a, b) in memo.bwd.iter().zip(&plain.bwd) {
                    assert_eq!(a.to_bits(), b.to_bits(), "bwd mismatch at {tokens} tokens");
                }
            }
        }
    }

    #[test]
    fn repeated_lookups_hit_the_cache() {
        let (cfg, dev, cost, traffic) = setup();
        let stages = even_stages(&cfg, 2);
        // A token count unlikely to collide with other tests' keys.
        let tokens = 4096 + 64;
        let run = |ssq: u64| {
            microbatch_cost(
                &cfg,
                KernelStrategy::FusedLora,
                tokens,
                ssq,
                &stages,
                16,
                &dev,
                &cost,
                &traffic,
            )
        };
        let first = run(uniform_sum_sq(tokens, 4));
        let before = cost_cache_stats();
        // Different sum_sq_len still hits: the key excludes it.
        let second = run(uniform_sum_sq(tokens, 8));
        let after = cost_cache_stats();
        assert!(after.hits > before.hits, "second call must be a cache hit");
        // Same tokens, different attention load: linears identical, totals
        // differ.
        assert_eq!(first.tokens, second.tokens);
        assert_ne!(first.fwd, second.fwd);
    }

    #[test]
    fn cost_scales_roughly_linearly_with_tokens() {
        let (cfg, dev, cost, traffic) = setup();
        let stages = even_stages(&cfg, 1);
        let run = |tokens: usize| {
            microbatch_cost(
                &cfg,
                KernelStrategy::FusedLora,
                tokens,
                uniform_sum_sq(tokens, tokens / 1024),
                &stages,
                16,
                &dev,
                &cost,
                &traffic,
            )
            .total()
        };
        let t1 = run(4096);
        let t2 = run(8192);
        assert!(t2 > t1 * 1.7 && t2 < t1 * 2.6, "t1 {t1} t2 {t2}");
    }
}
