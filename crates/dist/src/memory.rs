//! GPU memory accounting and OOM detection.
//!
//! Section 2.1's arithmetic: half-precision frozen weights (2 bytes per
//! parameter), full-precision optimizer on the trainable adapter
//! parameters (weight 2 + master copy 4 + gradient 4 + Adam moments 8 = 18
//! bytes per trainable parameter), plus activations proportional to the
//! tokens in flight. The WikiSum OOM failures of the padding baselines in
//! Fig. 14 fall out of this model.

use lorafusion_gpu::DeviceSpec;

use crate::model_config::TransformerConfig;

/// Bytes per frozen parameter (bf16).
pub const FROZEN_BYTES: u64 = 2;
/// Bytes per trainable parameter (bf16 weight + fp32 master + fp32 grad +
/// fp32 Adam m/v).
pub const TRAINABLE_BYTES: u64 = 18;
/// Saved activation bytes per token per decoder layer, with Megatron-style
/// selective recomputation (layer inputs plus attention residues).
pub const ACT_BYTES_PER_TOKEN_PER_LAYER_FACTOR: u64 = 3;
/// Fixed framework overhead (CUDA context, workspace, fragmentation).
pub const FRAMEWORK_OVERHEAD_BYTES: u64 = 6 * 1024 * 1024 * 1024;

/// How the LM-head + cross-entropy loss is lowered on the last stage.
///
/// The unfused lowering materializes the full `[microbatch_tokens x vocab]`
/// logits tensor *and* its gradient; the chunked fused lowering
/// (`lorafusion_kernels::loss`) only ever holds one `[chunk x vocab]`
/// logits buffer. Either way the buffer is a *fixed* reservation sized by
/// the loss schedule, not a per-token activation cost — which is exactly
/// why fusing it raises [`MemoryPlan::max_tokens_in_flight`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossMode {
    /// Full logits + dlogits materialized for a microbatch of this many
    /// tokens.
    Unfused {
        /// Tokens per microbatch on the last stage.
        microbatch_tokens: u64,
    },
    /// Liger-style chunked fused linear+CE: one live `[chunk x vocab]`
    /// logits buffer, reused across chunks.
    Chunked {
        /// Tokens per loss chunk.
        chunk_tokens: u64,
    },
}

impl LossMode {
    /// Bytes of live logits-space buffers this mode reserves (bf16).
    pub fn buffer_bytes(&self, vocab: u64) -> u64 {
        match *self {
            // Logits and dlogits both live across the backward.
            LossMode::Unfused { microbatch_tokens } => 2 * microbatch_tokens * vocab * FROZEN_BYTES,
            // One chunk buffer, transformed in place by the softmax-grad
            // prologue on the second GEMM.
            LossMode::Chunked { chunk_tokens } => chunk_tokens * vocab * FROZEN_BYTES,
        }
    }
}

/// Memory plan of one GPU in a training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryPlan {
    /// Frozen model state bytes resident on this GPU.
    pub frozen_bytes: u64,
    /// Adapter (trainable) state bytes, including optimizer.
    pub adapter_bytes: u64,
    /// Activation bytes per token *in flight* on this GPU.
    pub activation_bytes_per_token: u64,
    /// Fixed logits-space reservation for the loss lowering (see
    /// [`LossMode`]); zero when this GPU does not host the LM head.
    pub loss_buffer_bytes: u64,
}

impl MemoryPlan {
    /// Builds the plan for one GPU.
    ///
    /// `pp_stages` divides the layer stack; `fsdp_shards` divides the
    /// frozen/adapter states instead (use 1 for the unsharded case). The
    /// GPU hosting the embedding/LM head carries the extra vocab weights;
    /// we size for that worst-case GPU.
    pub fn for_gpu(
        cfg: &TransformerConfig,
        num_adapters: usize,
        rank: usize,
        pp_stages: usize,
        fsdp_shards: usize,
    ) -> Self {
        let pp = pp_stages.max(1) as u64;
        let shards = fsdp_shards.max(1) as u64;
        let layer_params = cfg.layer_params() * (cfg.layers as u64).div_ceil(pp);
        let vocab_params = cfg.vocab as u64 * cfg.hidden as u64; // Embedding or head.
        let frozen_params = layer_params + vocab_params;
        let adapter_params = cfg.lora_params(rank) * num_adapters as u64 / pp;
        let layers_here = (cfg.layers as u64).div_ceil(pp);
        Self {
            frozen_bytes: frozen_params * FROZEN_BYTES / shards,
            adapter_bytes: adapter_params * TRAINABLE_BYTES / shards,
            activation_bytes_per_token: layers_here
                * cfg.hidden as u64
                * ACT_BYTES_PER_TOKEN_PER_LAYER_FACTOR,
            loss_buffer_bytes: 0,
        }
    }

    /// Returns the plan with the loss lowering's fixed logits reservation
    /// applied (for the GPU hosting the LM head).
    pub fn with_loss(self, cfg: &TransformerConfig, mode: LossMode) -> Self {
        Self {
            loss_buffer_bytes: mode.buffer_bytes(cfg.vocab as u64),
            ..self
        }
    }

    /// Total bytes with `tokens_in_flight` activation tokens resident.
    pub fn total_bytes(&self, tokens_in_flight: u64) -> u64 {
        self.frozen_bytes
            + self.adapter_bytes
            + self.loss_buffer_bytes
            + self.activation_bytes_per_token * tokens_in_flight
            + FRAMEWORK_OVERHEAD_BYTES
    }

    /// Whether the configuration fits on `device`.
    pub fn fits(&self, device: &DeviceSpec, tokens_in_flight: u64) -> bool {
        self.total_bytes(tokens_in_flight) <= device.memory_bytes()
    }

    /// Largest token count in flight that still fits on `device`.
    pub fn max_tokens_in_flight(&self, device: &DeviceSpec) -> u64 {
        let fixed = self.frozen_bytes
            + self.adapter_bytes
            + self.loss_buffer_bytes
            + FRAMEWORK_OVERHEAD_BYTES;
        device
            .memory_bytes()
            .saturating_sub(fixed)
            .checked_div(self.activation_bytes_per_token.max(1))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_config::ModelPreset;
    use lorafusion_gpu::DeviceKind;

    #[test]
    fn full_finetune_would_not_fit_but_lora_does() {
        // Section 1: 70B LoRA fits in ~142 GB total (4 GPUs), while full
        // fine-tuning needs ~1120 GB of model states.
        let cfg = ModelPreset::Llama70b.config();
        let full_states = cfg.total_params() * 16; // Params+grad+optimizer.
        assert!(full_states as f64 / 1e9 > 1000.0);

        let plan = MemoryPlan::for_gpu(&cfg, 1, 16, 4, 1);
        let h100 = DeviceKind::H100Sxm.spec();
        assert!(
            plan.fits(&h100, 16384),
            "70B/4GPU LoRA must fit with 16k tokens"
        );
    }

    #[test]
    fn llama8b_fits_one_gpu() {
        let cfg = ModelPreset::Llama8b.config();
        let plan = MemoryPlan::for_gpu(&cfg, 4, 16, 1, 1);
        let h100 = DeviceKind::H100Sxm.spec();
        assert!(plan.fits(&h100, 16384));
        // But not on an RTX 3090.
        let rtx = DeviceKind::Rtx3090.spec();
        assert!(!plan.fits(&rtx, 16384));
    }

    #[test]
    fn padding_to_wikisum_max_oooms_the_70b_baseline() {
        // Four samples padded to 12288 tokens = 49k tokens per microbatch;
        // with S=4 microbatches in flight on stage 0, the baseline OOMs.
        let cfg = ModelPreset::Llama70b.config();
        let plan = MemoryPlan::for_gpu(&cfg, 4, 16, 4, 1);
        let h100 = DeviceKind::H100Sxm.spec();
        let padded_tokens_in_flight = 4 * 12288 * 4;
        assert!(!plan.fits(&h100, padded_tokens_in_flight));
        // While a packed 16k-token capacity stream fits.
        assert!(plan.fits(&h100, 16384 * 4));
    }

    #[test]
    fn adapters_are_cheap() {
        let cfg = ModelPreset::Llama70b.config();
        let one = MemoryPlan::for_gpu(&cfg, 1, 16, 4, 1);
        let four = MemoryPlan::for_gpu(&cfg, 4, 16, 4, 1);
        let delta = four.adapter_bytes - one.adapter_bytes;
        assert!(
            delta < one.frozen_bytes / 10,
            "adapter states must stay far below frozen weights"
        );
    }

    #[test]
    fn max_tokens_is_monotone_in_device_memory() {
        let cfg = ModelPreset::Llama8b.config();
        let plan = MemoryPlan::for_gpu(&cfg, 4, 16, 1, 1).with_loss(
            &cfg,
            LossMode::Unfused {
                microbatch_tokens: 16384,
            },
        );
        let mut caps: Vec<u64> = [
            DeviceKind::Rtx3090.spec(),
            DeviceKind::A100Sxm.spec(),
            DeviceKind::H100Sxm.spec(),
        ]
        .iter()
        .map(|d| plan.max_tokens_in_flight(d))
        .collect();
        let sorted = {
            let mut s = caps.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(caps, sorted, "capacity must not decrease with HBM");
        caps.dedup();
        assert!(caps.len() > 1, "capacities must actually differ");
    }

    #[test]
    fn fused_loss_raises_token_capacity_for_llama8b() {
        // Llama-3.1-8B: vocab 128256 x 16384-token microbatch of bf16
        // logits + dlogits is ~8 GiB of fixed reservation; the chunked
        // fused lowering holds one 4096-token chunk instead.
        let cfg = ModelPreset::Llama8b.config();
        let h100 = DeviceKind::H100Sxm.spec();
        let base = MemoryPlan::for_gpu(&cfg, 4, 16, 1, 1);
        let unfused = base
            .with_loss(
                &cfg,
                LossMode::Unfused {
                    microbatch_tokens: 16384,
                },
            )
            .max_tokens_in_flight(&h100);
        let fused = base
            .with_loss(&cfg, LossMode::Chunked { chunk_tokens: 4096 })
            .max_tokens_in_flight(&h100);
        assert!(
            fused > unfused,
            "chunked fused loss must raise capacity: fused {fused} vs unfused {unfused}"
        );
        // The freed headroom is the difference of the two reservations.
        let freed = LossMode::Unfused {
            microbatch_tokens: 16384,
        }
        .buffer_bytes(cfg.vocab as u64)
            - LossMode::Chunked { chunk_tokens: 4096 }.buffer_bytes(cfg.vocab as u64);
        assert_eq!(
            fused - unfused,
            freed / base.activation_bytes_per_token,
            "capacity gain must equal freed logits bytes over per-token cost"
        );
    }

    #[test]
    fn max_tokens_decreases_with_more_layers_per_gpu() {
        let cfg = ModelPreset::Llama70b.config();
        let h100 = DeviceKind::H100Sxm.spec();
        let pp4 = MemoryPlan::for_gpu(&cfg, 4, 16, 4, 1).max_tokens_in_flight(&h100);
        let pp8 = MemoryPlan::for_gpu(&cfg, 4, 16, 8, 1).max_tokens_in_flight(&h100);
        assert!(pp8 > pp4);
    }
}
