//! The end-to-end systems compared in Figs. 14-16, 20 and 22.
//!
//! * **Megatron-LM (FSDP)** — one job at a time, unfused Torch-LoRA
//!   kernels, fixed-sample-count microbatches, data-parallel ranks
//!   synchronizing per global batch;
//! * **Megatron-LM (PP)** — one job at a time, 1F1B pipeline with a full
//!   flush at every global batch;
//! * **mLoRA** — all jobs together in a zero-bubble pipeline with uniform
//!   round-robin adapter filling, but naive LoRA kernels and no
//!   length-aware packing;
//! * **LoRAFusion** — the scheduler of `lorafusion-sched` plus the
//!   FusedMultiLoRA kernels in a zero-bubble pipeline.
//!
//! A lower-level [`CustomConfig`] exposes the individual dimensions
//! (batching x kernel x pipeline mode) so the Fig. 22 breakdown and the
//! ablation benches can mix them freely.

use lorafusion_gpu::{CostModel, DeviceSpec};
use lorafusion_kernels::TrafficModel;
use lorafusion_sched::{schedule_jobs, AdapterJob, Microbatch, SchedulerConfig};

use crate::cluster::ClusterSpec;
use crate::collective::{all_reduce_seconds, p2p_seconds};
use crate::fsdp::{simulate_fsdp_step, FsdpModel, RankWork};
use crate::layer_cost::{even_stages, microbatch_cost, KernelStrategy};
use crate::memory::MemoryPlan;
use crate::model_config::ModelPreset;
use crate::pipeline::{simulate_pipeline, PipelineJob, PipelineOptions};

/// The four systems of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Megatron-LM with fully sharded data parallelism.
    MegatronFsdp,
    /// Megatron-LM with pipeline parallelism.
    MegatronPp,
    /// mLoRA (re-implemented with fast communication, as in the paper).
    MLora,
    /// This paper's system.
    LoraFusion,
}

impl SystemKind {
    /// All systems in figure order.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::MegatronFsdp,
        SystemKind::MegatronPp,
        SystemKind::MLora,
        SystemKind::LoraFusion,
    ];

    /// Display name matching the figures.
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::MegatronFsdp => "Megatron-LM (FSDP)",
            SystemKind::MegatronPp => "Megatron-LM (PP)",
            SystemKind::MLora => "mLoRA",
            SystemKind::LoraFusion => "LoRAFusion",
        }
    }
}

/// How microbatches are formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Batching {
    /// Fixed number of samples per microbatch (baseline behaviour whose
    /// token variance Fig. 6 plots).
    FixedSamples {
        /// Samples per microbatch.
        samples: usize,
    },
    /// LoRAFusion's capacity-packed scheduling.
    Scheduled {
        /// Token capacity per microbatch.
        capacity: usize,
        /// Run the two-stage MILP (false = greedy only, for ablation).
        use_milp: bool,
        /// Run the merge pass (ablation).
        use_merge: bool,
    },
    /// Like [`Batching::Scheduled`] but with an explicit adapter group
    /// count (the grouping ablation).
    ScheduledGrouped {
        /// Token capacity per microbatch.
        capacity: usize,
        /// Number of adapter groups.
        groups: usize,
    },
}

/// Pipeline discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Full pipeline flush + optimizer at every global batch.
    Flushed,
    /// Continuous multi-LoRA zero-bubble stream.
    Continuous,
}

/// A fully custom system configuration (the Fig. 22 ablation space).
#[derive(Debug, Clone)]
pub struct CustomConfig {
    /// Model preset.
    pub model: ModelPreset,
    /// Cluster.
    pub cluster: ClusterSpec,
    /// LoRA rank.
    pub rank: usize,
    /// Batching scheme.
    pub batching: Batching,
    /// Kernel used for the LoRA linears.
    pub kernel: KernelStrategy,
    /// Pipeline discipline.
    pub pipeline: PipelineMode,
    /// Whether jobs run one after another (Megatron) or jointly.
    pub sequential_jobs: bool,
}

/// Outcome of evaluating one system on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemResult {
    /// Throughput in trained tokens per second (0 when OOM).
    pub tokens_per_second: f64,
    /// Mean pipeline bubble ratio (None for FSDP/single-GPU runs).
    pub bubble_ratio: Option<f64>,
    /// Whether the configuration ran out of GPU memory.
    pub oom: bool,
    /// Total wall-clock seconds simulated.
    pub makespan: f64,
    /// Total real tokens trained.
    pub tokens: usize,
}

impl SystemResult {
    fn oom() -> Self {
        Self {
            tokens_per_second: 0.0,
            bubble_ratio: None,
            oom: true,
            makespan: 0.0,
            tokens: 0,
        }
    }
}

/// Evaluates one of the four named systems.
pub fn evaluate_system(
    kind: SystemKind,
    model: ModelPreset,
    cluster: &ClusterSpec,
    jobs: &[AdapterJob],
    rank: usize,
    capacity: usize,
) -> SystemResult {
    let cfg = match kind {
        SystemKind::MegatronFsdp => CustomConfig {
            model,
            cluster: cluster.clone(),
            rank,
            batching: Batching::FixedSamples { samples: 4 },
            kernel: KernelStrategy::TorchLora,
            pipeline: PipelineMode::Flushed,
            sequential_jobs: true,
        },
        SystemKind::MegatronPp => CustomConfig {
            model,
            cluster: cluster.clone(),
            rank,
            batching: Batching::FixedSamples { samples: 4 },
            kernel: KernelStrategy::TorchLora,
            pipeline: PipelineMode::Flushed,
            sequential_jobs: true,
        },
        SystemKind::MLora => CustomConfig {
            model,
            cluster: cluster.clone(),
            rank,
            batching: Batching::FixedSamples { samples: 4 },
            kernel: KernelStrategy::TorchLora,
            pipeline: PipelineMode::Continuous,
            sequential_jobs: false,
        },
        SystemKind::LoraFusion => CustomConfig {
            model,
            cluster: cluster.clone(),
            rank,
            batching: Batching::Scheduled {
                capacity,
                use_milp: true,
                use_merge: true,
            },
            kernel: KernelStrategy::FusedMultiLora { adapters: 1 },
            pipeline: PipelineMode::Continuous,
            sequential_jobs: false,
        },
    };
    match kind {
        SystemKind::MegatronFsdp => evaluate_fsdp(&cfg, jobs),
        _ => evaluate_pipelined(&cfg, jobs),
    }
}

/// Evaluates an arbitrary configuration on `jobs` (FSDP configurations
/// should use [`evaluate_fsdp`]).
pub fn evaluate_custom(cfg: &CustomConfig, jobs: &[AdapterJob]) -> SystemResult {
    evaluate_pipelined(cfg, jobs)
}

struct Env {
    device: DeviceSpec,
    cost: CostModel,
    traffic: TrafficModel,
}

fn env(cluster: &ClusterSpec) -> Env {
    let device = cluster.device.spec();
    Env {
        device,
        cost: CostModel::default(),
        traffic: TrafficModel::for_device(&device),
    }
}

/// Builds the microbatch stream (with per-adapter dependency edges) for a
/// set of jobs under the given batching scheme. Returns the stream plus
/// the flush-group sizes (one group per global-batch round).
fn build_stream(
    cfg: &CustomConfig,
    jobs: &[AdapterJob],
) -> Result<(Vec<Microbatch>, Vec<usize>), SystemResult> {
    match cfg.batching {
        Batching::FixedSamples { samples } => {
            let max_batches = jobs
                .iter()
                .map(AdapterJob::num_global_batches)
                .max()
                .unwrap_or(0);
            let mut stream = Vec::new();
            let mut groups = Vec::new();
            for j in 0..max_batches {
                let mut group_len = 0usize;
                for job in jobs {
                    if j >= job.num_global_batches() {
                        continue;
                    }
                    for chunk in job.global_batch(j).chunks(samples) {
                        stream.push(Microbatch {
                            entries: chunk
                                .iter()
                                .map(|&sample| lorafusion_sched::MicrobatchEntry {
                                    adapter: job.adapter,
                                    global_batch: j,
                                    sample,
                                })
                                .collect(),
                            noop: false,
                        });
                        group_len += 1;
                    }
                }
                if group_len > 0 {
                    groups.push(group_len);
                }
            }
            Ok((stream, groups))
        }
        Batching::Scheduled {
            capacity,
            use_milp,
            use_merge,
        } => {
            let sched_cfg = SchedulerConfig {
                capacity,
                pipeline_stages: cfg.cluster.gpus.max(1),
                use_milp,
                use_merge,
                ..SchedulerConfig::default()
            };
            let schedule = schedule_jobs(jobs, &sched_cfg).map_err(|_| SystemResult::oom())?;
            let groups = vec![schedule.microbatches.len()];
            Ok((schedule.microbatches, groups))
        }
        Batching::ScheduledGrouped { capacity, groups } => {
            let sched_cfg = SchedulerConfig {
                capacity,
                pipeline_stages: cfg.cluster.gpus.max(1),
                num_groups: Some(groups),
                ..SchedulerConfig::default()
            };
            let schedule = schedule_jobs(jobs, &sched_cfg).map_err(|_| SystemResult::oom())?;
            let groups = vec![schedule.microbatches.len()];
            Ok((schedule.microbatches, groups))
        }
    }
}

/// Computes per-adapter global-batch dependency edges over a stream.
fn dependency_edges(stream: &[Microbatch]) -> Vec<Option<usize>> {
    use std::collections::BTreeMap;
    let mut last_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    let mut first_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (i, mb) in stream.iter().enumerate() {
        for e in &mb.entries {
            last_of
                .entry((e.adapter, e.global_batch))
                .and_modify(|v| *v = (*v).max(i))
                .or_insert(i);
            first_of.entry((e.adapter, e.global_batch)).or_insert(i);
        }
    }
    let mut edges = vec![None; stream.len()];
    for (&(adapter, batch), &first) in &first_of {
        if batch == 0 {
            continue;
        }
        if let Some(&prev_last) = last_of.get(&(adapter, batch - 1)) {
            let edge = edges[first].get_or_insert(prev_last);
            *edge = (*edge).max(prev_last);
        }
    }
    edges
}

/// Ensures every same-adapter batch dependency is at least `gap` schedule
/// positions back by inserting no-op microbatches (modeling the stall the
/// pipeline would otherwise take).
fn enforce_spacing(stream: &mut Vec<Microbatch>, gap: usize) {
    // `fix_with_noops(S)` guarantees spacing of `S - 1` positions.
    lorafusion_sched::fix_with_noops(stream, gap + 1);
}

/// Physical tokens a microbatch occupies. Every system uses on-the-fly
/// packing (Section 2.2 "we adopt on-the-fly packing throughout"), so the
/// fixed-sample baselines concatenate their samples — giving the variable
/// token counts of Fig. 6 — while LoRAFusion packs to the per-adapter
/// padding multiple.
fn physical_tokens(mb: &Microbatch, batching: Batching) -> usize {
    match batching {
        Batching::FixedSamples { .. } => mb.real_tokens().div_ceil(64) * 64,
        Batching::Scheduled { .. } | Batching::ScheduledGrouped { .. } => mb.padded_tokens(64),
    }
}

/// Sum of squared per-document lengths (FlashAttention cost).
fn physical_sum_sq(mb: &Microbatch, _batching: Batching) -> u64 {
    mb.entries
        .iter()
        .map(|e| (e.sample.len as u64).pow(2))
        .sum()
}

fn evaluate_pipelined(cfg: &CustomConfig, jobs: &[AdapterJob]) -> SystemResult {
    let env = env(&cfg.cluster);
    let model_cfg = cfg.model.config();
    let stages = cfg.cluster.gpus.max(1);
    let stage_shapes = even_stages(&model_cfg, stages);
    let num_jobs = jobs.len().max(1);

    let job_sets: Vec<Vec<AdapterJob>> = if cfg.sequential_jobs {
        jobs.iter().map(|j| vec![j.clone()]).collect()
    } else {
        vec![jobs.to_vec()]
    };

    let plan = MemoryPlan::for_gpu(&model_cfg, num_jobs, cfg.rank, stages, 1);
    let mut total_tokens = 0usize;
    let mut total_time = 0.0f64;
    let mut bubble_acc = 0.0f64;
    let mut bubble_n = 0usize;

    for set in &job_sets {
        let (mut stream, groups) = match build_stream(cfg, set) {
            Ok(v) => v,
            Err(oom) => return oom,
        };
        if stream.is_empty() {
            continue;
        }
        // OOM check: stage 0 holds up to `stages` microbatches of
        // activations in flight.
        let max_tokens = stream
            .iter()
            .map(|m| physical_tokens(m, cfg.batching))
            .max()
            .unwrap_or(0);
        if !plan.fits(&env.device, (max_tokens * stages) as u64) {
            return SystemResult::oom();
        }

        let groups = match cfg.pipeline {
            PipelineMode::Flushed => groups,
            PipelineMode::Continuous => {
                enforce_spacing(&mut stream, stages.saturating_sub(1));
                vec![stream.len()]
            }
        };

        let edges = match cfg.pipeline {
            // Flushes already serialize global batches.
            PipelineMode::Flushed => vec![None; stream.len()],
            PipelineMode::Continuous => dependency_edges(&stream),
        };

        let mean_tokens = (stream.iter().map(Microbatch::real_tokens).sum::<usize>() as f64
            / stream.len() as f64)
            .max(1.0);
        let link = cfg.cluster.bottleneck_link(stages);
        let comm = if stages > 1 {
            p2p_seconds(link, (mean_tokens as u64) * model_cfg.hidden as u64 * 2)
        } else {
            0.0
        };

        let pipeline_jobs: Vec<PipelineJob> = stream
            .iter()
            .zip(&edges)
            .map(|(mb, &edge)| {
                if mb.noop || mb.entries.is_empty() {
                    return PipelineJob::noop(stages);
                }
                let kernel = match cfg.kernel {
                    KernelStrategy::FusedMultiLora { .. } => KernelStrategy::FusedMultiLora {
                        adapters: mb.adapters().len().max(1) as u32,
                    },
                    k => k,
                };
                let cost = microbatch_cost(
                    &model_cfg,
                    kernel,
                    physical_tokens(mb, cfg.batching).max(1),
                    physical_sum_sq(mb, cfg.batching),
                    &stage_shapes,
                    cfg.rank,
                    &env.device,
                    &env.cost,
                    &env.traffic,
                );
                PipelineJob {
                    fwd: cost.fwd,
                    bwd: cost.bwd,
                    tokens: mb.real_tokens(),
                    after_backward_of: edge,
                }
            })
            .collect();

        let opts = PipelineOptions {
            stages,
            comm_seconds: comm,
            optimizer_seconds: 0.002,
        };
        let result = simulate_pipeline(&pipeline_jobs, &groups, &opts);
        total_tokens += result.tokens;
        total_time += result.makespan;
        if stages > 1 {
            bubble_acc += result.bubble_ratio;
            bubble_n += 1;
        }
    }

    SystemResult {
        tokens_per_second: if total_time > 0.0 {
            total_tokens as f64 / total_time
        } else {
            0.0
        },
        bubble_ratio: (bubble_n > 0).then(|| bubble_acc / bubble_n as f64),
        oom: false,
        makespan: total_time,
        tokens: total_tokens,
    }
}

/// Evaluates the Megatron-LM FSDP baseline (or any FSDP-style config).
pub fn evaluate_fsdp(cfg: &CustomConfig, jobs: &[AdapterJob]) -> SystemResult {
    let env = env(&cfg.cluster);
    let model_cfg = cfg.model.config();
    let ranks_n = cfg.cluster.gpus.max(1);
    let stage_shapes = even_stages(&model_cfg, 1);
    let samples_per_mb = match cfg.batching {
        Batching::FixedSamples { samples } => samples,
        _ => 4,
    };

    let plan = MemoryPlan::for_gpu(&model_cfg, jobs.len(), cfg.rank, 1, ranks_n);
    let fsdp_model = FsdpModel {
        param_bytes: model_cfg.total_params() * 2,
        grad_bytes: model_cfg.lora_params(cfg.rank) * 4,
        overlap_fraction: 0.9,
        optimizer_seconds: 0.002,
    };

    let mut total_tokens = 0usize;
    let mut total_time = 0.0f64;
    for job in jobs {
        for j in 0..job.num_global_batches() {
            let batch = job.global_batch(j);
            // Microbatches of fixed sample count, dealt round-robin to
            // data-parallel ranks.
            let mbs: Vec<&[lorafusion_data::Sample]> = batch.chunks(samples_per_mb).collect();
            let mut ranks: Vec<RankWork> = vec![RankWork::default(); ranks_n];
            let mut max_mb_tokens = 0usize;
            for (i, mb) in mbs.iter().enumerate() {
                let tokens: usize = mb.iter().map(|s| s.len).sum();
                let physical = tokens.div_ceil(64) * 64;
                max_mb_tokens = max_mb_tokens.max(physical);
                let ssq: u64 = mb.iter().map(|s| (s.len as u64).pow(2)).sum();
                let cost = microbatch_cost(
                    &model_cfg,
                    cfg.kernel,
                    physical.max(1),
                    ssq,
                    &stage_shapes,
                    cfg.rank,
                    &env.device,
                    &env.cost,
                    &env.traffic,
                );
                let rank = &mut ranks[i % ranks_n];
                rank.microbatch_seconds.push(cost.total());
                rank.tokens += tokens;
            }
            if !plan.fits(&env.device, max_mb_tokens as u64) {
                return SystemResult::oom();
            }
            let step = simulate_fsdp_step(&cfg.cluster, &fsdp_model, &ranks);
            total_tokens += step.tokens;
            total_time += step.step_seconds;
        }
    }
    SystemResult {
        tokens_per_second: if total_time > 0.0 {
            total_tokens as f64 / total_time
        } else {
            0.0
        },
        bubble_ratio: None,
        oom: false,
        makespan: total_time,
        tokens: total_tokens,
    }
}

/// Data-parallel scaling of a pipelined configuration: `dp` replicas each
/// run the same pipeline over their share of the jobs, synchronizing
/// adapter gradients per global batch (Fig. 16's DP scaling mode).
pub fn evaluate_dp_pipelined(cfg: &CustomConfig, jobs: &[AdapterJob], dp: usize) -> SystemResult {
    let dp = dp.max(1);
    let model_cfg = cfg.model.config();
    // Split every job's samples across replicas.
    let mut replica_results = Vec::new();
    for r in 0..dp {
        let shard: Vec<AdapterJob> = jobs
            .iter()
            .map(|j| AdapterJob {
                adapter: j.adapter,
                samples: j
                    .samples
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % dp == r)
                    .map(|(_, s)| *s)
                    .collect(),
                global_batch_size: j.global_batch_size.div_ceil(dp),
            })
            .collect();
        replica_results.push(evaluate_pipelined(cfg, &shard));
    }
    if replica_results.iter().any(|r| r.oom) {
        return SystemResult::oom();
    }
    let makespan = replica_results
        .iter()
        .map(|r| r.makespan)
        .fold(0.0f64, f64::max);
    let tokens: usize = replica_results.iter().map(|r| r.tokens).sum();
    // Per-step adapter gradient all-reduce across replicas (small).
    let link = cfg.cluster.bottleneck_link(cfg.cluster.gpus);
    let sync = all_reduce_seconds(link, dp, model_cfg.lora_params(cfg.rank) * 4) * 8.0;
    let makespan = makespan + sync;
    SystemResult {
        tokens_per_second: if makespan > 0.0 {
            tokens as f64 / makespan
        } else {
            0.0
        },
        bubble_ratio: replica_results[0].bubble_ratio,
        oom: false,
        makespan,
        tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorafusion_data::{Dataset, DatasetPreset};

    fn jobs(preset: DatasetPreset, n: usize, count: usize, gbs: usize) -> Vec<AdapterJob> {
        (0..count)
            .map(|i| AdapterJob {
                adapter: i,
                samples: Dataset::from_preset(preset, n, 42 + i as u64).samples,
                global_batch_size: gbs,
            })
            .collect()
    }

    #[test]
    fn lorafusion_beats_baselines_on_70b() {
        let cluster = ClusterSpec::h100(4);
        let js = jobs(DatasetPreset::CnnDailyMail, 128, 4, 32);
        let mut results = std::collections::BTreeMap::new();
        for kind in SystemKind::ALL {
            let r = evaluate_system(kind, ModelPreset::Llama70b, &cluster, &js, 16, 16384);
            assert!(!r.oom, "{:?} unexpectedly OOMs", kind);
            results.insert(kind.name(), r.tokens_per_second);
        }
        let lf = results["LoRAFusion"];
        let mlora = results["mLoRA"];
        let mpp = results["Megatron-LM (PP)"];
        let mfsdp = results["Megatron-LM (FSDP)"];
        assert!(lf > mlora, "LoRAFusion {lf} vs mLoRA {mlora}");
        assert!(mlora > mpp, "mLoRA {mlora} vs Megatron-PP {mpp}");
        assert!(lf > mfsdp, "LoRAFusion {lf} vs Megatron-FSDP {mfsdp}");
        // Speedup bands from Fig. 14: 1.1-2.2x over the best baseline.
        let best_baseline = mlora.max(mpp).max(mfsdp);
        let speedup = lf / best_baseline;
        assert!((1.05..2.5).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn wikisum_ooms_fixed_sample_baselines_but_not_lorafusion() {
        let cluster = ClusterSpec::h100(4);
        let js = jobs(DatasetPreset::WikiSum, 128, 4, 16);
        let pp = evaluate_system(
            SystemKind::MegatronPp,
            ModelPreset::Llama70b,
            &cluster,
            &js,
            16,
            16384,
        );
        let lf = evaluate_system(
            SystemKind::LoraFusion,
            ModelPreset::Llama70b,
            &cluster,
            &js,
            16,
            16384,
        );
        assert!(pp.oom, "padding baseline should OOM on WikiSum at 70B");
        assert!(!lf.oom, "LoRAFusion packs within capacity and survives");
        assert!(lf.tokens_per_second > 0.0);
    }

    #[test]
    fn single_gpu_gains_come_from_kernels() {
        let cluster = ClusterSpec::h100(1);
        let js = jobs(DatasetPreset::XSum, 128, 4, 16);
        let base = evaluate_system(
            SystemKind::MegatronPp,
            ModelPreset::Llama8b,
            &cluster,
            &js,
            16,
            16384,
        );
        let lf = evaluate_system(
            SystemKind::LoraFusion,
            ModelPreset::Llama8b,
            &cluster,
            &js,
            16,
            16384,
        );
        assert!(!base.oom && !lf.oom);
        let speedup = lf.tokens_per_second / base.tokens_per_second;
        // Fig. 14's 8B single-GPU band: ~1.1-1.5x.
        assert!(
            (1.02..1.7).contains(&speedup),
            "single-GPU speedup {speedup}"
        );
    }

    #[test]
    fn bubble_ratio_ordering_matches_fig20() {
        let cluster = ClusterSpec::h100(4);
        let js = jobs(DatasetPreset::CnnDailyMail, 128, 4, 32);
        let pp = evaluate_system(
            SystemKind::MegatronPp,
            ModelPreset::Llama70b,
            &cluster,
            &js,
            16,
            16384,
        );
        let ml = evaluate_system(
            SystemKind::MLora,
            ModelPreset::Llama70b,
            &cluster,
            &js,
            16,
            16384,
        );
        let lf = evaluate_system(
            SystemKind::LoraFusion,
            ModelPreset::Llama70b,
            &cluster,
            &js,
            16,
            16384,
        );
        let (bp, bm, bl) = (
            pp.bubble_ratio.unwrap(),
            ml.bubble_ratio.unwrap(),
            lf.bubble_ratio.unwrap(),
        );
        assert!(bp > bm, "Megatron bubble {bp} must exceed mLoRA {bm}");
        assert!(bm > bl, "mLoRA bubble {bm} must exceed LoRAFusion {bl}");
    }

    #[test]
    fn dp_scaling_is_compatible() {
        let cluster = ClusterSpec::h100(4);
        let js = jobs(DatasetPreset::XSum, 128, 4, 16);
        let cfg = CustomConfig {
            model: ModelPreset::Llama70b,
            cluster: cluster.clone(),
            rank: 16,
            batching: Batching::Scheduled {
                capacity: 16384,
                use_milp: false,
                use_merge: true,
            },
            kernel: KernelStrategy::FusedMultiLora { adapters: 1 },
            pipeline: PipelineMode::Continuous,
            sequential_jobs: false,
        };
        let single = evaluate_custom(&cfg, &js);
        let dp2 = evaluate_dp_pipelined(&cfg, &js, 2);
        assert!(!single.oom && !dp2.oom);
        // DP halves each replica's work; aggregate throughput grows.
        assert!(dp2.tokens_per_second > single.tokens_per_second);
    }
}
