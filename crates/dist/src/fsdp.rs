//! FSDP (ZeRO-3) step simulation with compute/communication overlap.
//!
//! Each microbatch all-gathers the frozen parameters layer by layer in the
//! forward and backward passes; with enough compute per microbatch the
//! gathers hide behind the previous layer's work, otherwise they are
//! exposed — which is why small global batches lose badly in Fig. 5. The
//! data-parallel ranks synchronize gradients once per global batch, so the
//! step time is governed by the *slowest* rank (the load-imbalance effect
//! of Fig. 7).

use crate::cluster::ClusterSpec;
use crate::collective::{all_gather_seconds, all_reduce_seconds};

/// One rank's compute work for one global batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankWork {
    /// Per-microbatch compute seconds (fwd + bwd, all layers).
    pub microbatch_seconds: Vec<f64>,
    /// Real tokens across the rank's microbatches.
    pub tokens: usize,
}

/// FSDP model/communication parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsdpModel {
    /// Frozen parameter bytes (the states being gathered).
    pub param_bytes: u64,
    /// Trainable (adapter) gradient bytes reduced per step.
    pub grad_bytes: u64,
    /// Fraction of gather traffic that overlaps with compute when compute
    /// is long enough (prefetch quality).
    pub overlap_fraction: f64,
    /// Optimizer step seconds.
    pub optimizer_seconds: f64,
}

/// Result of simulating one global batch (one optimizer step).
#[derive(Debug, Clone, PartialEq)]
pub struct FsdpStepResult {
    /// Wall-clock seconds for the step.
    pub step_seconds: f64,
    /// Seconds the fastest rank idles waiting for the slowest.
    pub imbalance_seconds: f64,
    /// Exposed (non-overlapped) communication seconds.
    pub exposed_comm_seconds: f64,
    /// Tokens processed.
    pub tokens: usize,
}

impl FsdpStepResult {
    /// Step throughput in tokens/sec.
    pub fn tokens_per_second(&self) -> f64 {
        if self.step_seconds <= 0.0 {
            return 0.0;
        }
        self.tokens as f64 / self.step_seconds
    }
}

/// Simulates one FSDP global batch across `ranks.len()` data-parallel
/// ranks on `cluster`.
pub fn simulate_fsdp_step(
    cluster: &ClusterSpec,
    model: &FsdpModel,
    ranks: &[RankWork],
) -> FsdpStepResult {
    let n = ranks.len().max(1);
    let _span = lorafusion_trace::span!("fsdp.step", ranks = n);
    let link = cluster.bottleneck_link(n);

    // Parameter gathers: twice per microbatch (forward and backward
    // re-gather), sharded across ranks.
    let gather_per_mb = 2.0 * all_gather_seconds(link, n, model.param_bytes);

    let mut per_rank = Vec::with_capacity(n);
    for rank in ranks {
        let mut total = 0.0;
        let mut exposed = 0.0;
        for &mb in &rank.microbatch_seconds {
            // Overlappable portion hides under compute; the rest is
            // exposed serial time.
            let hidden = (mb * model.overlap_fraction).min(gather_per_mb);
            let exposed_mb = gather_per_mb - hidden;
            exposed += exposed_mb;
            total += mb + exposed_mb;
        }
        per_rank.push((total, exposed));
    }
    let slowest = per_rank.iter().map(|&(t, _)| t).fold(0.0f64, f64::max);
    let fastest = per_rank
        .iter()
        .map(|&(t, _)| t)
        .fold(f64::INFINITY, f64::min);
    let exposed_comm = per_rank.iter().map(|&(_, e)| e).fold(0.0f64, f64::max);

    // Gradient synchronization + optimizer, serial tail per step.
    let grad_sync = all_reduce_seconds(link, n, model.grad_bytes);
    let step = slowest + grad_sync + model.optimizer_seconds;
    FsdpStepResult {
        step_seconds: step,
        imbalance_seconds: if fastest.is_finite() {
            slowest - fastest
        } else {
            0.0
        },
        exposed_comm_seconds: exposed_comm + grad_sync,
        tokens: ranks.iter().map(|r| r.tokens).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FsdpModel {
        FsdpModel {
            param_bytes: 16_000_000_000, // 8B params in bf16.
            grad_bytes: 100_000_000,
            overlap_fraction: 0.9,
            optimizer_seconds: 0.01,
        }
    }

    fn rank(mbs: &[f64]) -> RankWork {
        RankWork {
            microbatch_seconds: mbs.to_vec(),
            tokens: mbs.len() * 8192,
        }
    }

    #[test]
    fn balanced_ranks_have_no_imbalance() {
        let cluster = ClusterSpec::h100(4);
        let ranks = vec![rank(&[1.0, 1.0]); 4];
        let r = simulate_fsdp_step(&cluster, &model(), &ranks);
        assert!(r.imbalance_seconds.abs() < 1e-12);
        assert!(r.step_seconds > 2.0);
    }

    #[test]
    fn step_time_tracks_slowest_rank() {
        let cluster = ClusterSpec::h100(4);
        let balanced = vec![rank(&[1.0, 1.0]); 4];
        let mut skewed = balanced.clone();
        skewed[0] = rank(&[2.0, 2.0]);
        let a = simulate_fsdp_step(&cluster, &model(), &balanced);
        let b = simulate_fsdp_step(&cluster, &model(), &skewed);
        assert!(b.step_seconds > a.step_seconds + 1.5);
        assert!(b.imbalance_seconds > 1.5);
    }

    #[test]
    fn tiny_microbatches_expose_communication() {
        let cluster = ClusterSpec::h100(4);
        // Long compute hides gathers; short compute exposes them.
        let long = simulate_fsdp_step(&cluster, &model(), &vec![rank(&[2.0]); 4]);
        let short = simulate_fsdp_step(&cluster, &model(), &vec![rank(&[0.05]); 4]);
        let long_eff = long.tokens as f64 / long.step_seconds;
        // Same tokens in the short case for fairness.
        let short_eff = short.tokens as f64 / short.step_seconds;
        assert!(short.exposed_comm_seconds > long.exposed_comm_seconds);
        // Tokens/sec per compute-second must be worse when comm is exposed.
        let _ = (long_eff, short_eff);
        assert!(
            short.step_seconds > 0.05 + 0.01,
            "comm must dominate tiny compute"
        );
    }

    #[test]
    fn larger_global_batches_amortize_fixed_costs() {
        // Fig. 5's FSDP curve: throughput grows with global batch size.
        let cluster = ClusterSpec::h100(4);
        let m = model();
        let small = simulate_fsdp_step(&cluster, &m, &vec![rank(&[0.5]); 4]);
        let large = simulate_fsdp_step(&cluster, &m, &vec![rank(&[0.5; 8]); 4]);
        assert!(large.tokens_per_second() > small.tokens_per_second());
    }
}
