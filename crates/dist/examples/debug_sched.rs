//! Diagnostic: inspect the LoRAFusion schedule and pipeline behaviour.

use lorafusion_data::{Dataset, DatasetPreset};
use lorafusion_dist::baselines::{evaluate_system, SystemKind};
use lorafusion_dist::cluster::ClusterSpec;
use lorafusion_dist::model_config::ModelPreset;
use lorafusion_sched::{schedule_jobs, AdapterJob, SchedulerConfig};

fn main() {
    for (gbs, n, cap) in [
        (16usize, 128usize, 16384usize),
        (32, 256, 16384),
        (32, 256, 8192),
    ] {
        let jobs: Vec<AdapterJob> = (0..4)
            .map(|i| AdapterJob {
                adapter: i,
                samples: Dataset::from_preset(DatasetPreset::CnnDailyMail, n, 42 + i as u64)
                    .samples,
                global_batch_size: gbs,
            })
            .collect();
        let cfg = SchedulerConfig {
            capacity: cap,
            pipeline_stages: 4,
            ..SchedulerConfig::default()
        };
        let s = schedule_jobs(&jobs, &cfg).unwrap();
        let noops = s.microbatches.iter().filter(|m| m.noop).count();
        let tokens: Vec<usize> = s.microbatches.iter().map(|m| m.padded_tokens(64)).collect();
        println!(
            "gbs={gbs} cap={cap}: mbs={} noops={} min={} max={} mean={:.0}",
            s.microbatches.len(),
            noops,
            tokens.iter().min().unwrap(),
            tokens.iter().max().unwrap(),
            tokens.iter().sum::<usize>() as f64 / tokens.len() as f64
        );
        let cluster = ClusterSpec::h100(4);
        for kind in SystemKind::ALL {
            let r = evaluate_system(kind, ModelPreset::Llama70b, &cluster, &jobs, 16, cap);
            println!(
                "  {:<22} tok/s={:>8.0} bubble={:?} oom={}",
                kind.name(),
                r.tokens_per_second,
                r.bubble_ratio.map(|b| (b * 1000.0).round() / 1000.0),
                r.oom
            );
        }
    }
}
