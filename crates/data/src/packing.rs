//! The three batching schemes of Fig. 2.
//!
//! * **Padding** — fixed samples per microbatch, shorter samples padded to
//!   the longest; wasted tokens are explicit.
//! * **Dataset pre-packing** — samples concatenated into fixed-length rows
//!   ahead of time; efficient but samples per step become variable,
//!   affecting training-order determinism.
//! * **On-the-fly packing** — samples of each batch concatenated up to a
//!   token capacity at batch time; no waste, deterministic samples per
//!   batch. This is what LoRAFusion (and this reproduction) uses.

use crate::dataset::Sample;

/// One packed microbatch: samples plus padding accounting.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PackedBatch {
    /// Samples in the microbatch.
    pub samples: Vec<Sample>,
    /// Real tokens (sum of sample lengths).
    pub real_tokens: usize,
    /// Padding tokens added to reach the batch's physical size.
    pub padding_tokens: usize,
}

impl PackedBatch {
    /// Physical tokens processed (real plus padding).
    pub fn physical_tokens(&self) -> usize {
        self.real_tokens + self.padding_tokens
    }

    /// Fraction of processed tokens that are real work.
    pub fn efficiency(&self) -> f64 {
        if self.physical_tokens() == 0 {
            return 1.0;
        }
        self.real_tokens as f64 / self.physical_tokens() as f64
    }
}

/// Traditional padding: groups of `batch_size` consecutive samples, each
/// padded to the group's maximum length (Fig. 2a).
pub fn pack_padded(samples: &[Sample], batch_size: usize) -> Vec<PackedBatch> {
    assert!(batch_size > 0, "batch size must be positive");
    samples
        .chunks(batch_size)
        .map(|chunk| {
            let max = chunk.iter().map(|s| s.len).max().unwrap_or(0);
            let real: usize = chunk.iter().map(|s| s.len).sum();
            PackedBatch {
                samples: chunk.to_vec(),
                real_tokens: real,
                padding_tokens: max * chunk.len() - real,
            }
        })
        .collect()
}

/// Dataset pre-packing: greedily fills fixed `row_len` rows from the sample
/// stream, splitting the stream into rows ahead of training (Fig. 2b).
///
/// Samples longer than `row_len` are truncated to `row_len` (mirroring
/// context-window truncation). Rows may hold variable sample counts.
pub fn pack_prepacked(samples: &[Sample], row_len: usize) -> Vec<PackedBatch> {
    assert!(row_len > 0, "row length must be positive");
    let mut rows = Vec::new();
    let mut current: Vec<Sample> = Vec::new();
    let mut used = 0usize;
    for &s in samples {
        let len = s.len.min(row_len);
        let clamped = Sample { id: s.id, len };
        if used + len > row_len && !current.is_empty() {
            rows.push(PackedBatch {
                real_tokens: used,
                padding_tokens: row_len - used,
                samples: std::mem::take(&mut current),
            });
            used = 0;
        }
        used += len;
        current.push(clamped);
    }
    if !current.is_empty() {
        rows.push(PackedBatch {
            real_tokens: used,
            padding_tokens: row_len - used,
            samples: current,
        });
    }
    rows
}

/// On-the-fly packing: concatenates the batch's samples into microbatches
/// of at most `capacity` tokens, preserving order and sample identity
/// (Fig. 2c). Samples longer than `capacity` are truncated.
pub fn pack_on_the_fly(samples: &[Sample], capacity: usize) -> Vec<PackedBatch> {
    assert!(capacity > 0, "capacity must be positive");
    let mut batches = Vec::new();
    let mut current: Vec<Sample> = Vec::new();
    let mut used = 0usize;
    for &s in samples {
        let len = s.len.min(capacity);
        let clamped = Sample { id: s.id, len };
        if used + len > capacity && !current.is_empty() {
            batches.push(PackedBatch {
                real_tokens: used,
                padding_tokens: 0,
                samples: std::mem::take(&mut current),
            });
            used = 0;
        }
        used += len;
        current.push(clamped);
    }
    if !current.is_empty() {
        batches.push(PackedBatch {
            real_tokens: used,
            padding_tokens: 0,
            samples: current,
        });
    }
    batches
}

/// Aggregate packing efficiency over a set of batches.
pub fn overall_efficiency(batches: &[PackedBatch]) -> f64 {
    let real: usize = batches.iter().map(|b| b.real_tokens).sum();
    let physical: usize = batches.iter().map(PackedBatch::physical_tokens).sum();
    if physical == 0 {
        return 1.0;
    }
    real as f64 / physical as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::distributions::DatasetPreset;

    fn samples(lens: &[usize]) -> Vec<Sample> {
        lens.iter()
            .enumerate()
            .map(|(i, &len)| Sample { id: i as u64, len })
            .collect()
    }

    #[test]
    fn padding_accounts_waste() {
        let batches = pack_padded(&samples(&[10, 4, 6, 8]), 2);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].real_tokens, 14);
        assert_eq!(batches[0].padding_tokens, 6); // Padded to 2 x 10.
        assert_eq!(batches[1].padding_tokens, 2); // Padded to 2 x 8.
    }

    #[test]
    fn on_the_fly_has_zero_padding() {
        let batches = pack_on_the_fly(&samples(&[10, 4, 6, 8, 3]), 16);
        assert!(batches.iter().all(|b| b.padding_tokens == 0));
        assert!(batches.iter().all(|b| b.real_tokens <= 16));
        let total: usize = batches.iter().map(|b| b.real_tokens).sum();
        assert_eq!(total, 31);
    }

    #[test]
    fn prepacked_rows_are_fixed_length() {
        let rows = pack_prepacked(&samples(&[10, 4, 6, 8, 3]), 16);
        for row in &rows {
            assert_eq!(row.physical_tokens(), 16);
        }
    }

    #[test]
    fn long_samples_are_truncated() {
        let batches = pack_on_the_fly(&samples(&[100]), 16);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].real_tokens, 16);
    }

    #[test]
    fn packing_preserves_every_sample_exactly_once() {
        let d = Dataset::from_preset(DatasetPreset::Mixed, 200, 11);
        for batches in [
            pack_padded(&d.samples, 4),
            pack_on_the_fly(&d.samples, 8192),
            pack_prepacked(&d.samples, 8192),
        ] {
            let mut ids: Vec<u64> = batches
                .iter()
                .flat_map(|b| b.samples.iter().map(|s| s.id))
                .collect();
            ids.sort_unstable();
            let expect: Vec<u64> = (0..200).collect();
            assert_eq!(ids, expect);
        }
    }

    #[test]
    fn on_the_fly_beats_padding_on_realistic_data() {
        // The motivation for Fig. 2: padding wastes a large token fraction
        // on variable-length data; on-the-fly packing wastes none.
        let d = Dataset::from_preset(DatasetPreset::WikiSum, 512, 12);
        let padded = overall_efficiency(&pack_padded(&d.samples, 4));
        let otf = overall_efficiency(&pack_on_the_fly(&d.samples, 16384));
        assert!(padded < 0.8, "padding efficiency {padded}");
        assert_eq!(otf, 1.0);
    }
}
