//! Sequence-length distributions matched to the paper's datasets (Fig. 13).

use lorafusion_tensor::Pcg32;

/// A sampler of token sequence lengths.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LengthDistribution {
    /// Every sample has the same length (the "ideal" workloads of Figs. 5
    /// and 7).
    Fixed {
        /// The constant length.
        len: usize,
    },
    /// Uniform between two bounds (inclusive).
    Uniform {
        /// Minimum length.
        min: usize,
        /// Maximum length.
        max: usize,
    },
    /// Lognormal with clamping — the natural fit for document-length data.
    LogNormal {
        /// Mean of the underlying normal (log-tokens).
        mu: f64,
        /// Std-dev of the underlying normal.
        sigma: f64,
        /// Lower clamp in tokens.
        min: usize,
        /// Upper clamp in tokens (tokenizer / context-window truncation).
        max: usize,
    },
    /// Weighted mixture of other distributions (the paper's "Mixed"
    /// setting combines all three summarization datasets).
    Mixture {
        /// `(weight, component)` pairs; weights need not be normalized.
        components: Vec<(f64, LengthDistribution)>,
    },
}

impl LengthDistribution {
    /// Draws one length.
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        match self {
            LengthDistribution::Fixed { len } => *len,
            LengthDistribution::Uniform { min, max } => {
                *min + rng.next_bounded((*max - *min + 1) as u32) as usize
            }
            LengthDistribution::LogNormal {
                mu,
                sigma,
                min,
                max,
            } => {
                let z = rng.next_gaussian();
                let len = (mu + sigma * z).exp().round() as usize;
                len.clamp(*min, *max)
            }
            LengthDistribution::Mixture { components } => {
                let total: f64 = components.iter().map(|(w, _)| w).sum();
                let mut pick = rng.next_f64() * total;
                for (w, dist) in components {
                    pick -= w;
                    if pick <= 0.0 {
                        return dist.sample(rng);
                    }
                }
                // Numerical fall-through: use the last component.
                components.last().map(|(_, d)| d.sample(rng)).unwrap_or(1)
            }
        }
    }

    /// Draws `n` lengths.
    pub fn sample_many(&self, n: usize, rng: &mut Pcg32) -> Vec<usize> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Analytic mean where closed-form (estimated by sampling for
    /// mixtures/clamps — good enough for capacity proposals).
    pub fn approximate_mean(&self, rng: &mut Pcg32) -> f64 {
        let samples = self.sample_many(4096, rng);
        samples.iter().sum::<usize>() as f64 / samples.len() as f64
    }
}

/// The datasets used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DatasetPreset {
    /// XSum: short single-sentence summaries of BBC articles.
    XSum,
    /// CNN/DailyMail: medium-length news articles.
    CnnDailyMail,
    /// WikiSum: long Wikipedia-derived documents with heavy tails.
    WikiSum,
    /// Mixed: a uniform mixture of the three (the paper's "Mix").
    Mixed,
}

impl DatasetPreset {
    /// All presets in the order the paper's figures use.
    pub const ALL: [DatasetPreset; 4] = [
        DatasetPreset::XSum,
        DatasetPreset::CnnDailyMail,
        DatasetPreset::WikiSum,
        DatasetPreset::Mixed,
    ];

    /// Short display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            DatasetPreset::XSum => "XSum",
            DatasetPreset::CnnDailyMail => "CNNDM",
            DatasetPreset::WikiSum => "WikiSum",
            DatasetPreset::Mixed => "Mixed",
        }
    }

    /// The calibrated length distribution (tokens per sample, prompt plus
    /// target, LLaMa-3 tokenizer scale).
    pub fn distribution(self) -> LengthDistribution {
        match self {
            // Tight distribution centered around ~500 tokens.
            DatasetPreset::XSum => LengthDistribution::LogNormal {
                mu: 6.15,
                sigma: 0.42,
                min: 64,
                max: 2048,
            },
            // Medium articles, ~900 tokens, moderate spread.
            DatasetPreset::CnnDailyMail => LengthDistribution::LogNormal {
                mu: 6.75,
                sigma: 0.55,
                min: 128,
                max: 4096,
            },
            // Long documents with a heavy tail — the dataset that OOMs the
            // baselines in Fig. 14.
            DatasetPreset::WikiSum => LengthDistribution::LogNormal {
                mu: 7.3,
                sigma: 0.85,
                min: 128,
                max: 12288,
            },
            DatasetPreset::Mixed => LengthDistribution::Mixture {
                components: vec![
                    (1.0, DatasetPreset::XSum.distribution()),
                    (1.0, DatasetPreset::CnnDailyMail.distribution()),
                    (1.0, DatasetPreset::WikiSum.distribution()),
                ],
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(v: &[usize]) -> f64 {
        v.iter().sum::<usize>() as f64 / v.len() as f64
    }

    #[test]
    fn fixed_is_constant() {
        let mut rng = Pcg32::seeded(1);
        let d = LengthDistribution::Fixed { len: 512 };
        assert!(d.sample_many(100, &mut rng).iter().all(|&l| l == 512));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = Pcg32::seeded(2);
        let d = LengthDistribution::Uniform { min: 10, max: 20 };
        for len in d.sample_many(1000, &mut rng) {
            assert!((10..=20).contains(&len));
        }
    }

    #[test]
    fn lognormal_respects_clamps() {
        let mut rng = Pcg32::seeded(3);
        let d = DatasetPreset::WikiSum.distribution();
        for len in d.sample_many(5000, &mut rng) {
            assert!((128..=12288).contains(&len));
        }
    }

    #[test]
    fn preset_means_are_ordered_like_fig13() {
        // XSum < CNNDM < WikiSum in mean length, and WikiSum has by far the
        // largest spread.
        let mut rng = Pcg32::seeded(4);
        let xsum = DatasetPreset::XSum
            .distribution()
            .sample_many(20_000, &mut rng);
        let cnndm = DatasetPreset::CnnDailyMail
            .distribution()
            .sample_many(20_000, &mut rng);
        let wiki = DatasetPreset::WikiSum
            .distribution()
            .sample_many(20_000, &mut rng);
        assert!(mean(&xsum) < mean(&cnndm));
        assert!(mean(&cnndm) < mean(&wiki));

        let std = |v: &[usize]| {
            let m = mean(v);
            (v.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
        };
        assert!(std(&wiki) > 2.0 * std(&xsum));
    }

    #[test]
    fn mixture_spans_components() {
        let mut rng = Pcg32::seeded(5);
        let mixed = DatasetPreset::Mixed
            .distribution()
            .sample_many(20_000, &mut rng);
        let m = mean(&mixed);
        // Mixture mean sits between XSum's and WikiSum's.
        assert!(m > 450.0 && m < 2600.0, "mixed mean {m}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let d = DatasetPreset::CnnDailyMail.distribution();
        let a = d.sample_many(64, &mut Pcg32::seeded(9));
        let b = d.sample_many(64, &mut Pcg32::seeded(9));
        assert_eq!(a, b);
    }
}
