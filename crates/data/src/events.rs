//! Seeded job event streams for the online scheduler.
//!
//! The streaming scheduler (`lorafusion-sched`'s `online` module) and its
//! bench need one deterministic workload source so quality, latency and
//! determinism claims are all made against the same events. This module
//! generates arrival / finish / cancel streams over the existing
//! length-distribution presets: arrivals draw a job length from a
//! [`LengthDistribution`] and an adapter from a bounded pool; departures
//! retire a uniformly chosen live job. All randomness comes from one
//! [`Pcg32`], so a `(seed, config)` pair fully determines the stream.

use lorafusion_tensor::Pcg32;

use crate::distributions::LengthDistribution;

/// One event in a job stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    /// A new fine-tuning job enters the queue.
    Arrive {
        /// Unique job id (monotonically increasing from 0).
        id: u64,
        /// Adapter the job trains.
        adapter: usize,
        /// Token length of the job's microbatch contribution.
        len: usize,
    },
    /// A running job completes and leaves the packing.
    Finish {
        /// Id of the departing job.
        id: u64,
    },
    /// A queued job is cancelled before completion.
    Cancel {
        /// Id of the cancelled job.
        id: u64,
    },
}

impl JobEvent {
    /// The job id this event concerns.
    pub fn id(&self) -> u64 {
        match *self {
            JobEvent::Arrive { id, .. } | JobEvent::Finish { id } | JobEvent::Cancel { id } => id,
        }
    }
}

/// Configuration of a generated event stream.
#[derive(Debug, Clone)]
pub struct EventStreamConfig {
    /// Number of events to generate.
    pub num_events: usize,
    /// Distinct adapters jobs may train.
    pub num_adapters: usize,
    /// Length distribution for arriving jobs.
    pub lengths: LengthDistribution,
    /// Lengths are clamped to `[1, max_len]` so every job fits a bin.
    pub max_len: usize,
    /// Probability (per mille) that a non-arrival departure is a cancel
    /// rather than a finish.
    pub cancel_per_mille: u32,
    /// Target number of live jobs: below it events are always arrivals,
    /// above it departures grow more likely, so the stream hovers around
    /// a steady-state queue of roughly this size.
    pub target_live: usize,
}

impl Default for EventStreamConfig {
    fn default() -> Self {
        Self {
            num_events: 1024,
            num_adapters: 8,
            lengths: LengthDistribution::LogNormal {
                mu: 5.5,
                sigma: 0.6,
                min: 16,
                max: 4096,
            },
            max_len: 4096,
            cancel_per_mille: 100,
            target_live: 256,
        }
    }
}

/// Generates a deterministic event stream.
///
/// Every id referenced by a `Finish`/`Cancel` was previously introduced
/// by an `Arrive` and not yet retired; the first events are always
/// arrivals. The same `(config, seed)` yields the same stream on every
/// platform and thread count (the generator is pure single-threaded
/// `Pcg32`).
pub fn generate_events(config: &EventStreamConfig, seed: u64) -> Vec<JobEvent> {
    let mut rng = Pcg32::seeded(seed);
    let mut events = Vec::with_capacity(config.num_events);
    // Live job ids, in arrival order; removal picks a uniform index.
    let mut live: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    let target = config.target_live.max(1);

    while events.len() < config.num_events {
        // P(arrival) interpolates from 1 at an empty queue to 1/2 at the
        // target size and keeps falling beyond it, holding the live count
        // near the target without ever deadlocking.
        let arrive = if live.is_empty() {
            true
        } else {
            let p_num = target as u64;
            let p_den = (target + live.len()) as u64;
            (rng.next_u32() as u64 * p_den) < (p_num << 32)
        };
        if arrive {
            let len = (config.lengths.sample(&mut rng).max(1)).min(config.max_len.max(1));
            let adapter = (rng.next_u32() as usize) % config.num_adapters.max(1);
            let id = next_id;
            next_id += 1;
            live.push(id);
            events.push(JobEvent::Arrive { id, adapter, len });
        } else {
            let idx = (rng.next_u32() as usize) % live.len();
            let id = live.swap_remove(idx);
            let cancel = rng.next_u32() % 1000 < config.cancel_per_mille;
            events.push(if cancel {
                JobEvent::Cancel { id }
            } else {
                JobEvent::Finish { id }
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn streams_are_deterministic() {
        let config = EventStreamConfig {
            num_events: 500,
            ..EventStreamConfig::default()
        };
        let a = generate_events(&config, 42);
        let b = generate_events(&config, 42);
        assert_eq!(a, b);
        let c = generate_events(&config, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn departures_reference_live_jobs() {
        let config = EventStreamConfig {
            num_events: 2000,
            target_live: 50,
            ..EventStreamConfig::default()
        };
        let events = generate_events(&config, 7);
        assert_eq!(events.len(), 2000);
        let mut live: BTreeSet<u64> = BTreeSet::new();
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        for e in &events {
            match *e {
                JobEvent::Arrive { id, adapter, len } => {
                    assert!(seen.insert(id), "id {id} reused");
                    assert!(adapter < config.num_adapters);
                    assert!(len >= 1 && len <= config.max_len);
                    live.insert(id);
                }
                JobEvent::Finish { id } | JobEvent::Cancel { id } => {
                    assert!(live.remove(&id), "departure of non-live job {id}");
                }
            }
        }
    }

    #[test]
    fn live_count_hovers_near_target() {
        let config = EventStreamConfig {
            num_events: 10_000,
            target_live: 100,
            ..EventStreamConfig::default()
        };
        let events = generate_events(&config, 1);
        let mut live = 0i64;
        let mut max_live = 0i64;
        for e in &events {
            match e {
                JobEvent::Arrive { .. } => live += 1,
                _ => live -= 1,
            }
            max_live = max_live.max(live);
        }
        // The queue reaches the target and does not blow far past it.
        assert!(max_live >= 100, "never reached target: {max_live}");
        assert!(max_live < 400, "queue ran away: {max_live}");
    }

    #[test]
    fn mixes_finishes_and_cancels() {
        let config = EventStreamConfig {
            num_events: 5000,
            target_live: 50,
            cancel_per_mille: 300,
            ..EventStreamConfig::default()
        };
        let events = generate_events(&config, 3);
        let finishes = events
            .iter()
            .filter(|e| matches!(e, JobEvent::Finish { .. }))
            .count();
        let cancels = events
            .iter()
            .filter(|e| matches!(e, JobEvent::Cancel { .. }))
            .count();
        assert!(finishes > 0 && cancels > 0);
        // Roughly 30% of departures cancel.
        let frac = cancels as f64 / (finishes + cancels) as f64;
        assert!((0.2..0.4).contains(&frac), "cancel fraction {frac}");
    }
}
