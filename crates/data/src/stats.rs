//! Length statistics and histograms for the figure generators.

/// Summary statistics of a length sample.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LengthStats {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Standard deviation (population).
    pub std_dev: f64,
    /// Minimum.
    pub min: usize,
    /// 25th percentile.
    pub p25: usize,
    /// Median.
    pub p50: usize,
    /// 75th percentile.
    pub p75: usize,
    /// 95th percentile.
    pub p95: usize,
    /// Maximum.
    pub max: usize,
}

impl LengthStats {
    /// Computes statistics over `lengths`. Returns `None` for empty input.
    pub fn compute(lengths: &[usize]) -> Option<Self> {
        if lengths.is_empty() {
            return None;
        }
        let mut sorted = lengths.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let mean = sorted.iter().sum::<usize>() as f64 / count as f64;
        let var = sorted
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / count as f64;
        let pct = |p: f64| sorted[(((count - 1) as f64) * p).round() as usize];
        Some(Self {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            p25: pct(0.25),
            p50: pct(0.50),
            p75: pct(0.75),
            p95: pct(0.95),
            max: sorted[count - 1],
        })
    }

    /// Coefficient of variation — the imbalance proxy used when grouping
    /// adapters.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            return 0.0;
        }
        self.std_dev / self.mean
    }
}

/// Fixed-width histogram over `lengths` with `bins` buckets spanning
/// `[0, max]`. Returns `(bucket upper bounds, counts)`.
pub fn histogram(lengths: &[usize], bins: usize) -> (Vec<usize>, Vec<usize>) {
    assert!(bins > 0, "bins must be positive");
    let max = lengths.iter().copied().max().unwrap_or(0).max(1);
    let width = max.div_ceil(bins);
    let mut counts = vec![0usize; bins];
    for &len in lengths {
        let idx = (len / width).min(bins - 1);
        counts[idx] += 1;
    }
    let bounds = (1..=bins).map(|i| i * width).collect();
    (bounds, counts)
}

/// Token counts per consecutive group of `group` samples — the quantity
/// plotted in Fig. 6 (tokens per microbatch at a fixed microbatch size).
pub fn tokens_per_group(lengths: &[usize], group: usize) -> Vec<usize> {
    assert!(group > 0, "group must be positive");
    lengths.chunks(group).map(|c| c.iter().sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::distributions::DatasetPreset;

    #[test]
    fn stats_of_known_sequence() {
        let s = LengthStats::compute(&[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1);
        assert_eq!(s.p50, 3);
        assert_eq!(s.max, 5);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn empty_input_returns_none() {
        assert!(LengthStats::compute(&[]).is_none());
    }

    #[test]
    fn histogram_counts_everything() {
        let lengths = vec![1, 5, 9, 13, 17];
        let (bounds, counts) = histogram(&lengths, 4);
        assert_eq!(bounds.len(), 4);
        assert_eq!(counts.iter().sum::<usize>(), 5);
    }

    #[test]
    fn tokens_per_group_matches_fig6_setup() {
        let v = tokens_per_group(&[1, 2, 3, 4, 5, 6, 7, 8, 9], 4);
        assert_eq!(v, vec![10, 26, 9]);
    }

    #[test]
    fn wikisum_microbatches_vary_widely() {
        // Fig. 6's point: token counts per fixed-size microbatch vary a lot
        // on realistic data.
        let d = Dataset::from_preset(DatasetPreset::Mixed, 4096, 21);
        let groups = tokens_per_group(&d.lengths(), 4);
        let s = LengthStats::compute(&groups).unwrap();
        assert!(s.cv() > 0.3, "cv {}", s.cv());
        assert!(s.max as f64 > 2.5 * s.min as f64);
    }
}
