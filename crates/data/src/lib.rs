//! Synthetic fine-tuning workloads.
//!
//! The paper evaluates on three public summarization datasets — XSum,
//! CNN/DailyMail and WikiSum — whose *sequence-length distributions*
//! (Fig. 13) drive everything the scheduler cares about: token counts per
//! microbatch (Fig. 6), load imbalance across GPUs (Fig. 7) and packing
//! quality. The corpora themselves are irrelevant to the systems claims, so
//! this crate substitutes seeded lognormal generators matched to the
//! published length statistics:
//!
//! * [`distributions`] — length distribution presets and samplers;
//! * [`dataset`] — synthetic datasets of `(sample id, length)` records and
//!   global-batch splitting;
//! * [`packing`] — the three batching schemes of Fig. 2 (padding, dataset
//!   pre-packing, on-the-fly packing) with token-waste accounting;
//! * [`stats`] — summary statistics and histograms used by the figure
//!   generators.

pub mod dataset;
pub mod distributions;
pub mod events;
pub mod packing;
pub mod stats;

pub use dataset::{Dataset, Sample};
pub use distributions::{DatasetPreset, LengthDistribution};
pub use events::{generate_events, EventStreamConfig, JobEvent};
pub use packing::{pack_on_the_fly, pack_padded, pack_prepacked, PackedBatch};
pub use stats::LengthStats;
