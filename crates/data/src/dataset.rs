//! Synthetic datasets and global-batch splitting.

use lorafusion_tensor::Pcg32;

use crate::distributions::{DatasetPreset, LengthDistribution};

/// One training sample: the scheduler only needs its identity and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Sample {
    /// Stable sample identifier (index into the dataset).
    pub id: u64,
    /// Token length.
    pub len: usize,
}

/// A synthetic dataset: a named, seeded sequence of samples.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Dataset {
    /// Display name.
    pub name: String,
    /// Samples in training order.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Generates a dataset of `n` samples from `dist`.
    pub fn generate(
        name: impl Into<String>,
        dist: &LengthDistribution,
        n: usize,
        seed: u64,
    ) -> Self {
        let mut rng = Pcg32::seeded(seed);
        let samples = (0..n as u64)
            .map(|id| Sample {
                id,
                len: dist.sample(&mut rng),
            })
            .collect();
        Self {
            name: name.into(),
            samples,
        }
    }

    /// Generates a dataset from one of the paper's presets.
    pub fn from_preset(preset: DatasetPreset, n: usize, seed: u64) -> Self {
        Self::generate(preset.name(), &preset.distribution(), n, seed)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total token count.
    pub fn total_tokens(&self) -> usize {
        self.samples.iter().map(|s| s.len).sum()
    }

    /// Splits the dataset into global batches of `global_batch_size`
    /// samples, preserving training order (the scheduler must not reorder
    /// across global-batch boundaries — Section 5.2 "Granularity").
    ///
    /// The final partial batch, if any, is kept.
    pub fn global_batches(&self, global_batch_size: usize) -> Vec<Vec<Sample>> {
        assert!(global_batch_size > 0, "global batch size must be positive");
        self.samples
            .chunks(global_batch_size)
            .map(<[Sample]>::to_vec)
            .collect()
    }

    /// All sample lengths, in order.
    pub fn lengths(&self) -> Vec<usize> {
        self.samples.iter().map(|s| s.len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let d1 = Dataset::from_preset(DatasetPreset::XSum, 100, 7);
        let d2 = Dataset::from_preset(DatasetPreset::XSum, 100, 7);
        assert_eq!(d1, d2);
        let d3 = Dataset::from_preset(DatasetPreset::XSum, 100, 8);
        assert_ne!(d1, d3);
    }

    #[test]
    fn global_batches_preserve_order_and_count() {
        let d = Dataset::from_preset(DatasetPreset::CnnDailyMail, 10, 1);
        let batches = d.global_batches(4);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].len(), 4);
        assert_eq!(batches[2].len(), 2);
        let flattened: Vec<Sample> = batches.concat();
        assert_eq!(flattened, d.samples);
    }

    #[test]
    fn ids_are_sequential() {
        let d = Dataset::from_preset(DatasetPreset::WikiSum, 16, 2);
        for (i, s) in d.samples.iter().enumerate() {
            assert_eq!(s.id, i as u64);
        }
    }

    #[test]
    fn totals_are_consistent() {
        let d = Dataset::from_preset(DatasetPreset::Mixed, 64, 3);
        assert_eq!(d.total_tokens(), d.lengths().iter().sum::<usize>());
        assert_eq!(d.len(), 64);
        assert!(!d.is_empty());
    }
}
