//! Device specifications for the GPUs referenced by the paper.

/// Element data types used by the performance model.
///
/// The functional executors compute in `f32` for auditability, but the
/// performance model accounts traffic at the training precision the paper
/// uses (half precision activations/weights, full-precision optimizer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DType {
    /// 8-bit float (used only to model compact dropout-mask storage).
    F8,
    /// IEEE half precision.
    F16,
    /// bfloat16.
    BF16,
    /// IEEE single precision.
    F32,
}

impl DType {
    /// Size of one element in bytes.
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            DType::F8 => 1,
            DType::F16 | DType::BF16 => 2,
            DType::F32 => 4,
        }
    }
}

/// The GPU models with calibrated specs in this reproduction.
///
/// These are the devices the paper evaluates on (H100, L40S) plus the ones
/// the artifact ships pre-tuned kernel configs for (A100 SXM/PCIe, RTX3090).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum DeviceKind {
    /// NVIDIA H100 SXM 80GB (NVLink).
    H100Sxm,
    /// NVIDIA L40S 48GB (PCIe).
    L40S,
    /// NVIDIA A100 SXM4 80GB.
    A100Sxm,
    /// NVIDIA A100 PCIe 80GB.
    A100Pcie,
    /// NVIDIA GeForce RTX 3090 24GB.
    Rtx3090,
}

impl DeviceKind {
    /// All known device kinds.
    pub const ALL: [DeviceKind; 5] = [
        DeviceKind::H100Sxm,
        DeviceKind::L40S,
        DeviceKind::A100Sxm,
        DeviceKind::A100Pcie,
        DeviceKind::Rtx3090,
    ];

    /// Returns the calibrated spec for this device kind.
    pub fn spec(self) -> DeviceSpec {
        match self {
            DeviceKind::H100Sxm => DeviceSpec {
                name: "NVIDIA H100 80GB HBM3",
                kind: self,
                peak_half_tflops: 989.4,
                mem_bandwidth_gbs: 3350.0,
                memory_gib: 80.0,
                sm_count: 132,
                l2_cache_mib: 50.0,
                launch_overhead_us: 3.0,
            },
            DeviceKind::L40S => DeviceSpec {
                name: "NVIDIA L40S 48GB",
                kind: self,
                peak_half_tflops: 362.1,
                mem_bandwidth_gbs: 864.0,
                memory_gib: 48.0,
                sm_count: 142,
                l2_cache_mib: 96.0,
                launch_overhead_us: 3.0,
            },
            DeviceKind::A100Sxm => DeviceSpec {
                name: "NVIDIA A100 SXM4 80GB",
                kind: self,
                peak_half_tflops: 312.0,
                mem_bandwidth_gbs: 2039.0,
                memory_gib: 80.0,
                sm_count: 108,
                l2_cache_mib: 40.0,
                launch_overhead_us: 3.5,
            },
            DeviceKind::A100Pcie => DeviceSpec {
                name: "NVIDIA A100 PCIe 80GB",
                kind: self,
                peak_half_tflops: 312.0,
                mem_bandwidth_gbs: 1935.0,
                memory_gib: 80.0,
                sm_count: 108,
                l2_cache_mib: 40.0,
                launch_overhead_us: 3.5,
            },
            DeviceKind::Rtx3090 => DeviceSpec {
                name: "NVIDIA GeForce RTX 3090",
                kind: self,
                peak_half_tflops: 71.0,
                mem_bandwidth_gbs: 936.0,
                memory_gib: 24.0,
                sm_count: 82,
                l2_cache_mib: 6.0,
                launch_overhead_us: 4.0,
            },
        }
    }
}

/// Calibrated hardware parameters of one GPU.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DeviceSpec {
    /// Marketing name, matching the artifact's tuning-config keys.
    pub name: &'static str,
    /// Device kind.
    pub kind: DeviceKind,
    /// Dense (no sparsity) FP16/BF16 tensor-core peak in TFLOP/s.
    pub peak_half_tflops: f64,
    /// DRAM bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// DRAM capacity in GiB.
    pub memory_gib: f64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// L2 cache size in MiB.
    pub l2_cache_mib: f64,
    /// Fixed per-kernel launch/driver overhead in microseconds.
    pub launch_overhead_us: f64,
}

impl DeviceSpec {
    /// Peak half-precision throughput in FLOP/s.
    #[inline]
    pub fn peak_flops(&self) -> f64 {
        self.peak_half_tflops * 1e12
    }

    /// DRAM bandwidth in bytes/s.
    #[inline]
    pub fn bandwidth_bytes(&self) -> f64 {
        self.mem_bandwidth_gbs * 1e9
    }

    /// DRAM capacity in bytes.
    #[inline]
    pub fn memory_bytes(&self) -> u64 {
        (self.memory_gib * 1024.0 * 1024.0 * 1024.0) as u64
    }

    /// Launch overhead in seconds.
    #[inline]
    pub fn launch_overhead_s(&self) -> f64 {
        self.launch_overhead_us * 1e-6
    }

    /// Machine balance in FLOPs per byte (see Eq. 2 of the paper).
    #[inline]
    pub fn machine_balance(&self) -> f64 {
        self.peak_flops() / self.bandwidth_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_machine_balance_matches_paper() {
        // Section 3.1: machine balance "~295 for FP16 on NVIDIA H100 GPUs".
        let balance = DeviceKind::H100Sxm.spec().machine_balance();
        assert!((balance - 295.0).abs() < 5.0, "H100 balance {balance}");
    }

    #[test]
    fn specs_are_positive_and_ordered() {
        for kind in DeviceKind::ALL {
            let spec = kind.spec();
            assert!(spec.peak_half_tflops > 0.0);
            assert!(spec.mem_bandwidth_gbs > 0.0);
            assert!(spec.memory_gib > 0.0);
        }
        // H100 must dominate L40S on both axes (paper's Fig. 15 discussion).
        let h100 = DeviceKind::H100Sxm.spec();
        let l40s = DeviceKind::L40S.spec();
        assert!(h100.peak_half_tflops > l40s.peak_half_tflops);
        assert!(h100.mem_bandwidth_gbs > l40s.mem_bandwidth_gbs);
    }

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F16.bytes(), 2);
        assert_eq!(DType::BF16.bytes(), 2);
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::F8.bytes(), 1);
    }

    #[test]
    fn memory_capacity_in_bytes() {
        let h100 = DeviceKind::H100Sxm.spec();
        assert_eq!(h100.memory_bytes(), 80 * 1024 * 1024 * 1024);
    }
}
