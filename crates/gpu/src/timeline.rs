//! Execution timelines and DRAM-traffic ledgers.
//!
//! [`Timeline`] records kernel executions on one logical stream; the
//! distributed simulator uses one timeline per pipeline stage to measure
//! bubble ratios (Fig. 20). [`TrafficLedger`] aggregates DRAM bytes per
//! kernel name, reproducing the NCU traffic comparison of Fig. 19.

use std::collections::BTreeMap;

use crate::device::DeviceSpec;
use crate::kernel::{CostModel, KernelProfile};

/// One executed kernel interval on a stream.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimelineEvent {
    /// Kernel name.
    pub name: String,
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

impl TimelineEvent {
    /// Event duration in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// One idle gap on a stream: the interval a `wait_until` skipped over.
/// Idle is first-class so bubble ratios can be computed from explicit
/// events rather than reconstructed from cursor arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IdleGap {
    /// Gap start in seconds (the cursor before the wait).
    pub start: f64,
    /// Gap end in seconds (the waited-for time).
    pub end: f64,
}

impl IdleGap {
    /// Gap duration in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A single-stream execution record.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Timeline {
    events: Vec<TimelineEvent>,
    idle: Vec<IdleGap>,
    cursor: f64,
}

impl Timeline {
    /// Creates an empty timeline starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time cursor (end of the last event or last wait).
    #[inline]
    pub fn now(&self) -> f64 {
        self.cursor
    }

    /// Advances the cursor to `time` if it is later, recording the
    /// skipped interval as an explicit [`IdleGap`].
    pub fn wait_until(&mut self, time: f64) {
        if time > self.cursor {
            self.idle.push(IdleGap {
                start: self.cursor,
                end: time,
            });
            self.cursor = time;
        }
    }

    /// Appends an event of `duration` seconds starting at the cursor and
    /// returns its `(start, end)` interval.
    pub fn push(&mut self, name: impl Into<String>, duration: f64) -> (f64, f64) {
        let start = self.cursor;
        let end = start + duration.max(0.0);
        self.events.push(TimelineEvent {
            name: name.into(),
            start,
            end,
        });
        self.cursor = end;
        (start, end)
    }

    /// Executes `profile` through `model` on `device` and appends it.
    pub fn execute(
        &mut self,
        device: &DeviceSpec,
        model: &CostModel,
        profile: &KernelProfile,
    ) -> (f64, f64) {
        let cost = model.kernel_cost(device, profile);
        self.push(profile.name.clone(), cost.seconds)
    }

    /// All recorded events in execution order.
    pub fn events(&self) -> &[TimelineEvent] {
        &self.events
    }

    /// Sum of event durations (busy time).
    pub fn busy(&self) -> f64 {
        self.events.iter().map(TimelineEvent::duration).sum()
    }

    /// Total elapsed time from zero to the cursor.
    pub fn makespan(&self) -> f64 {
        self.cursor
    }

    /// Idle fraction in `[0, 1]`: the pipeline-bubble ratio of this stream.
    pub fn idle_ratio(&self) -> f64 {
        if self.cursor <= 0.0 {
            return 0.0;
        }
        1.0 - self.busy() / self.cursor
    }

    /// All recorded idle gaps in execution order.
    pub fn idle_gaps(&self) -> &[IdleGap] {
        &self.idle
    }

    /// Sum of explicit idle-gap durations. Because the cursor only
    /// advances through `push` (busy) or `wait_until` (a recorded
    /// gap), this equals `makespan() - busy()` up to rounding.
    pub fn idle_total(&self) -> f64 {
        self.idle.iter().map(IdleGap::duration).sum()
    }

    /// Bubble ratio computed purely from the explicit idle events,
    /// with no cursor arithmetic: `idle_total / makespan`.
    pub fn idle_ratio_from_events(&self) -> f64 {
        if self.cursor <= 0.0 {
            return 0.0;
        }
        self.idle_total() / self.cursor
    }

    /// Exports this timeline as one simulated-stream track labelled
    /// `label` in the process trace: kernels as `sim` events, gaps as
    /// `idle` events (simulated seconds become trace microseconds).
    /// No-op when tracing is disabled.
    pub fn export_to_trace(&self, label: &str) {
        use lorafusion_trace::sim;
        let track = sim::sim_track(label);
        if !track.is_live() {
            return;
        }
        for e in &self.events {
            sim::sim_complete(track, &e.name, e.start * 1e6, e.duration() * 1e6);
        }
        for gap in &self.idle {
            sim::sim_idle(track, gap.start * 1e6, gap.duration() * 1e6);
        }
    }
}

/// Aggregated DRAM traffic per kernel name.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrafficLedger {
    per_kernel: BTreeMap<String, (u64, u64)>,
}

impl TrafficLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the traffic of one kernel launch.
    pub fn record(&mut self, profile: &KernelProfile) {
        let entry = self
            .per_kernel
            .entry(profile.name.clone())
            .or_insert((0, 0));
        entry.0 += profile.bytes_read;
        entry.1 += profile.bytes_written;
    }

    /// Records every kernel in a lowered sequence.
    pub fn record_all(&mut self, profiles: &[KernelProfile]) {
        for p in profiles {
            self.record(p);
        }
    }

    /// Total bytes read across all kernels.
    pub fn total_read(&self) -> u64 {
        self.per_kernel.values().map(|(r, _)| r).sum()
    }

    /// Total bytes written across all kernels.
    pub fn total_written(&self) -> u64 {
        self.per_kernel.values().map(|(_, w)| w).sum()
    }

    /// Total DRAM traffic in bytes.
    pub fn total(&self) -> u64 {
        self.total_read() + self.total_written()
    }

    /// Iterates `(kernel name, bytes_read, bytes_written)` sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.per_kernel
            .iter()
            .map(|(k, &(r, w))| (k.as_str(), r, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;
    use crate::kernel::KernelClass;

    #[test]
    fn timeline_accumulates_and_measures_idle() {
        let mut t = Timeline::new();
        t.push("a", 1.0);
        t.wait_until(3.0);
        t.push("b", 1.0);
        assert_eq!(t.makespan(), 4.0);
        assert_eq!(t.busy(), 2.0);
        assert!((t.idle_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[1].start, 3.0);
    }

    #[test]
    fn idle_ratios_of_empty_timeline_are_zero() {
        // Regression guard: both idle-ratio spellings must return 0 (not
        // NaN from 0/0) on a timeline whose cursor never advanced, and
        // agree with each other once it has.
        let t = Timeline::new();
        assert_eq!(t.idle_ratio(), 0.0);
        assert_eq!(t.idle_ratio_from_events(), 0.0);

        let mut t = Timeline::new();
        t.push("a", 1.0);
        t.wait_until(4.0);
        assert!((t.idle_ratio_from_events() - t.idle_ratio()).abs() < 1e-12);
        assert!((t.idle_ratio_from_events() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn wait_until_never_rewinds() {
        let mut t = Timeline::new();
        t.push("a", 2.0);
        t.wait_until(1.0);
        assert_eq!(t.now(), 2.0);
        // A backwards wait records no idle gap.
        assert!(t.idle_gaps().is_empty());
    }

    #[test]
    fn wait_until_records_explicit_idle_gaps() {
        let mut t = Timeline::new();
        t.push("a", 1.0);
        t.wait_until(3.0);
        t.push("b", 1.0);
        t.wait_until(4.5);
        assert_eq!(t.idle_gaps().len(), 2);
        assert_eq!(
            t.idle_gaps()[0],
            IdleGap {
                start: 1.0,
                end: 3.0
            }
        );
        assert_eq!(
            t.idle_gaps()[1],
            IdleGap {
                start: 4.0,
                end: 4.5
            }
        );
        assert!((t.idle_total() - 2.5).abs() < 1e-12);
        // The explicit-event bubble ratio must agree with the cursor
        // arithmetic the Fig. 20 path uses.
        assert!((t.idle_ratio_from_events() - t.idle_ratio()).abs() < 1e-12);
        assert!((t.idle_total() - (t.makespan() - t.busy())).abs() < 1e-12);
    }

    #[test]
    fn execute_uses_cost_model() {
        let dev = DeviceKind::H100Sxm.spec();
        let model = CostModel::default();
        let profile = KernelProfile {
            name: "ew".into(),
            class: KernelClass::Elementwise { tensors: 2 },
            flops: 0.0,
            bytes_read: 1 << 30,
            bytes_written: 1 << 30,
        };
        let mut t = Timeline::new();
        let (s, e) = t.execute(&dev, &model, &profile);
        assert_eq!(s, 0.0);
        let expect = model.kernel_cost(&dev, &profile).seconds;
        assert!((e - expect).abs() < 1e-15);
    }

    #[test]
    fn ledger_aggregates_by_name() {
        let mk = |name: &str, r: u64, w: u64| KernelProfile {
            name: name.into(),
            class: KernelClass::Reduction,
            flops: 0.0,
            bytes_read: r,
            bytes_written: w,
        };
        let mut ledger = TrafficLedger::new();
        ledger.record_all(&[mk("x", 10, 1), mk("x", 5, 2), mk("y", 7, 3)]);
        assert_eq!(ledger.total_read(), 22);
        assert_eq!(ledger.total_written(), 6);
        assert_eq!(ledger.total(), 28);
        let rows: Vec<_> = ledger.iter().collect();
        assert_eq!(rows, vec![("x", 15, 3), ("y", 7, 3)]);
    }

    #[test]
    fn empty_timeline_has_zero_idle() {
        assert_eq!(Timeline::new().idle_ratio(), 0.0);
    }
}
