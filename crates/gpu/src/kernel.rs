//! Kernel profiles and the calibrated roofline cost model.

use crate::device::DeviceSpec;

/// Access-pattern class of a kernel launch.
///
/// The class selects which efficiency curve the [`CostModel`] applies: GEMMs
/// run on tensor cores with shape-dependent utilization, while elementwise
/// kernels stream memory at a fraction of peak bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KernelClass {
    /// Dense tensor-core GEMM with logical shape `m x k x n`.
    Gemm {
        /// Rows of the output (token dimension for activations).
        m: u64,
        /// Contraction dimension.
        k: u64,
        /// Columns of the output.
        n: u64,
    },
    /// A GEMM whose prologue/epilogue also performs fused memory-bound work
    /// (e.g. `XW` accumulating `alpha * S B`, or dropout fused into the
    /// down-projection). Slightly lower compute efficiency than a bare GEMM
    /// because the epilogue occupies registers (Section 5.1).
    FusedGemm {
        /// Rows of the output.
        m: u64,
        /// Contraction dimension.
        k: u64,
        /// Columns of the output.
        n: u64,
        /// Number of distinct adapters routed at tile level (1 for
        /// FusedLoRA; >1 models FusedMultiLoRA's lookup-table routing).
        adapters: u32,
    },
    /// Streaming elementwise kernel touching `tensors` operands.
    Elementwise {
        /// Number of distinct full-size tensors read or written.
        tensors: u32,
    },
    /// Reduction kernel (loss, gradient norms).
    Reduction,
}

/// FLOPs and DRAM traffic of one kernel launch.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelProfile {
    /// Stable kernel name used by breakdowns and ledgers.
    pub name: String,
    /// Access-pattern class.
    pub class: KernelClass,
    /// Floating point operations performed.
    pub flops: f64,
    /// Bytes read from DRAM.
    pub bytes_read: u64,
    /// Bytes written to DRAM.
    pub bytes_written: u64,
}

impl KernelProfile {
    /// Total DRAM traffic in bytes.
    #[inline]
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Arithmetic intensity in FLOPs per DRAM byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        crate::roofline::arithmetic_intensity(self.flops, self.bytes_total())
    }
}

/// What limited a kernel's execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Boundedness {
    /// Tensor-core throughput bound.
    Compute,
    /// DRAM bandwidth bound.
    Memory,
    /// Dominated by fixed launch overhead.
    Launch,
}

/// Cost estimate for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KernelCost {
    /// Wall-clock seconds including launch overhead.
    pub seconds: f64,
    /// Limiting resource.
    pub bound: Boundedness,
}

/// Calibration knobs of the roofline model.
///
/// Defaults are calibrated so the reproduction matches the paper's measured
/// shapes: ~40%/36% LoRA fwd/bwd slowdown at n=k=4096 (Fig. 3), ~2.6x DRAM
/// traffic (Section 3.1), and 1.2-1.4x fused-kernel speedups (Fig. 17).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostModel {
    /// Peak fraction a well-tiled large GEMM achieves on tensor cores.
    pub gemm_base_efficiency: f64,
    /// Half-saturation constant for the token dimension `m`.
    pub gemm_m_half: f64,
    /// Half-saturation constant for the `k` and `n` dimensions.
    pub gemm_kn_half: f64,
    /// Fraction of peak DRAM bandwidth achieved by GEMM streaming.
    pub gemm_mem_efficiency: f64,
    /// Fraction of peak DRAM bandwidth achieved by elementwise kernels.
    pub elementwise_mem_efficiency: f64,
    /// Compute-efficiency multiplier applied to fused-epilogue GEMMs.
    pub fused_epilogue_penalty: f64,
    /// Additional multiplicative time overhead per extra adapter routed at
    /// tile level by FusedMultiLoRA (gradient accumulation and lookup).
    pub multi_adapter_overhead: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            gemm_base_efficiency: 0.80,
            gemm_m_half: 384.0,
            gemm_kn_half: 96.0,
            gemm_mem_efficiency: 0.85,
            elementwise_mem_efficiency: 0.72,
            fused_epilogue_penalty: 0.95,
            multi_adapter_overhead: 0.035,
        }
    }
}

impl CostModel {
    /// Shape-dependent tensor-core efficiency of a GEMM.
    ///
    /// Small dimensions under-fill tiles and waves; the saturating curves
    /// reproduce the paper's observation that tiny-rank GEMMs cannot reach
    /// peak compute (they are memory-bound anyway) and that fused kernels
    /// perform best "when the sequence length is regular and matches the
    /// performant sequence length" (Section 6.6).
    pub fn gemm_efficiency(&self, m: u64, k: u64, n: u64) -> f64 {
        let sat = |d: f64, half: f64| d / (d + half);
        self.gemm_base_efficiency
            * sat(m as f64, self.gemm_m_half)
            * sat(k as f64, self.gemm_kn_half)
            * sat(n as f64, self.gemm_kn_half)
    }

    /// Estimates the cost of one kernel launch on `device`.
    pub fn kernel_cost(&self, device: &DeviceSpec, profile: &KernelProfile) -> KernelCost {
        let (compute_eff, mem_eff, extra) = match profile.class {
            KernelClass::Gemm { m, k, n } => {
                (self.gemm_efficiency(m, k, n), self.gemm_mem_efficiency, 1.0)
            }
            KernelClass::FusedGemm { m, k, n, adapters } => {
                let extra = 1.0 + self.multi_adapter_overhead * adapters.saturating_sub(1) as f64;
                (
                    self.gemm_efficiency(m, k, n) * self.fused_epilogue_penalty,
                    self.gemm_mem_efficiency,
                    extra,
                )
            }
            KernelClass::Elementwise { .. } | KernelClass::Reduction => (
                self.gemm_base_efficiency,
                self.elementwise_mem_efficiency,
                1.0,
            ),
        };
        let t_compute = if profile.flops > 0.0 {
            profile.flops / (device.peak_flops() * compute_eff.max(1e-6))
        } else {
            0.0
        };
        let t_memory = profile.bytes_total() as f64 / (device.bandwidth_bytes() * mem_eff);
        let body = t_compute.max(t_memory) * extra;
        let launch = device.launch_overhead_s();
        let bound = if launch > body {
            Boundedness::Launch
        } else if t_compute >= t_memory {
            Boundedness::Compute
        } else {
            Boundedness::Memory
        };
        KernelCost {
            seconds: body + launch,
            bound,
        }
    }

    /// Total time of a sequence of kernels executed back-to-back on one
    /// stream.
    pub fn sequence_seconds(&self, device: &DeviceSpec, kernels: &[KernelProfile]) -> f64 {
        kernels
            .iter()
            .map(|k| self.kernel_cost(device, k).seconds)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    fn h100() -> DeviceSpec {
        DeviceKind::H100Sxm.spec()
    }

    fn gemm_profile(m: u64, k: u64, n: u64) -> KernelProfile {
        let e = 2u64; // Half precision.
        KernelProfile {
            name: "gemm".into(),
            class: KernelClass::Gemm { m, k, n },
            flops: 2.0 * m as f64 * k as f64 * n as f64,
            bytes_read: (m * k + k * n) * e,
            bytes_written: m * n * e,
        }
    }

    #[test]
    fn large_gemm_is_compute_bound() {
        let cost = CostModel::default().kernel_cost(&h100(), &gemm_profile(8192, 4096, 4096));
        assert_eq!(cost.bound, Boundedness::Compute);
        // Roughly (2*8192*4096*4096) / (989e12 * ~0.7) ~ 0.4-0.6 ms.
        assert!(
            cost.seconds > 2e-4 && cost.seconds < 1e-3,
            "cost {}",
            cost.seconds
        );
    }

    #[test]
    fn low_rank_gemm_is_memory_bound() {
        // The LoRA down-projection (rank 16) from Section 3.1.
        let cost = CostModel::default().kernel_cost(&h100(), &gemm_profile(8192, 4096, 16));
        assert_eq!(cost.bound, Boundedness::Memory);
    }

    #[test]
    fn tiny_kernel_is_launch_bound() {
        let profile = KernelProfile {
            name: "tiny".into(),
            class: KernelClass::Elementwise { tensors: 2 },
            flops: 64.0,
            bytes_read: 256,
            bytes_written: 256,
        };
        let cost = CostModel::default().kernel_cost(&h100(), &profile);
        assert_eq!(cost.bound, Boundedness::Launch);
    }

    #[test]
    fn efficiency_grows_with_shape() {
        let model = CostModel::default();
        assert!(model.gemm_efficiency(8192, 4096, 4096) > model.gemm_efficiency(512, 4096, 4096));
        assert!(model.gemm_efficiency(8192, 4096, 4096) > model.gemm_efficiency(8192, 4096, 16));
        assert!(model.gemm_efficiency(8192, 4096, 4096) < model.gemm_base_efficiency);
    }

    #[test]
    fn multi_adapter_routing_costs_more() {
        let model = CostModel::default();
        let single = KernelProfile {
            name: "fused".into(),
            class: KernelClass::FusedGemm {
                m: 8192,
                k: 4096,
                n: 4096,
                adapters: 1,
            },
            flops: 2.0 * 8192.0 * 4096.0 * 4096.0,
            bytes_read: (8192 * 4096 + 4096 * 4096) * 2,
            bytes_written: 8192 * 4096 * 2,
        };
        let mut multi = single.clone();
        multi.class = KernelClass::FusedGemm {
            m: 8192,
            k: 4096,
            n: 4096,
            adapters: 4,
        };
        let t1 = model.kernel_cost(&h100(), &single).seconds;
        let t4 = model.kernel_cost(&h100(), &multi).seconds;
        assert!(t4 > t1, "multi-adapter routing must add overhead");
        assert!(t4 < t1 * 1.25, "routing overhead must stay small (Fig. 17)");
    }

    #[test]
    fn sequence_is_sum_of_kernels() {
        let model = CostModel::default();
        let dev = h100();
        let a = gemm_profile(1024, 1024, 1024);
        let b = gemm_profile(2048, 1024, 1024);
        let total = model.sequence_seconds(&dev, &[a.clone(), b.clone()]);
        let expect = model.kernel_cost(&dev, &a).seconds + model.kernel_cost(&dev, &b).seconds;
        assert!((total - expect).abs() < 1e-12);
    }
}
