//! Roofline arithmetic: intensities and machine balance (Eq. 2).

use crate::device::DeviceSpec;

/// Arithmetic intensity in FLOPs per DRAM byte.
#[inline]
pub fn arithmetic_intensity(flops: f64, bytes: u64) -> f64 {
    if bytes == 0 {
        return f64::INFINITY;
    }
    flops / bytes as f64
}

/// Machine balance of `device` in FLOPs per byte.
///
/// Section 3.1 quotes ~295 FLOP/byte for FP16 on H100.
#[inline]
pub fn machine_balance(device: &DeviceSpec) -> f64 {
    device.machine_balance()
}

/// Arithmetic intensity of LoRA's down-projection GEMM `X̂ A` (Eq. 2).
///
/// For an `m x k` input and rank `r`, in half precision:
/// `I = 1 / (1/r + 1/m + 1/k)` FLOPs per byte. Because `r ≪ m, k`, the
/// intensity collapses to roughly `r`, far below the machine balance — the
/// paper's core observation that LoRA GEMMs are memory-bound.
#[inline]
pub fn lora_down_projection_intensity(m: u64, k: u64, r: u64) -> f64 {
    1.0 / (1.0 / r as f64 + 1.0 / m as f64 + 1.0 / k as f64)
}

/// Whether a kernel with the given intensity is memory-bound on `device`.
#[inline]
pub fn is_memory_bound(intensity: f64, device: &DeviceSpec) -> bool {
    intensity < machine_balance(device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;

    #[test]
    fn eq2_matches_first_principles() {
        // I = 2mkr / (2(mk + kr + mr)).
        let (m, k, r) = (8192u64, 4096u64, 16u64);
        let flops = 2.0 * m as f64 * k as f64 * r as f64;
        let bytes = 2 * (m * k + k * r + m * r);
        let direct = arithmetic_intensity(flops, bytes);
        let closed = lora_down_projection_intensity(m, k, r);
        assert!((direct - closed).abs() / direct < 1e-12);
    }

    #[test]
    fn lora_down_projection_is_memory_bound_on_h100() {
        let h100 = DeviceKind::H100Sxm.spec();
        let intensity = lora_down_projection_intensity(8192, 4096, 16);
        assert!(
            intensity < 16.5,
            "intensity {intensity} should collapse to ~r"
        );
        assert!(is_memory_bound(intensity, &h100));
        // And it stays memory-bound even for huge token counts.
        assert!(is_memory_bound(
            lora_down_projection_intensity(1 << 22, 8192, 64),
            &h100
        ));
    }

    #[test]
    fn frozen_gemm_is_compute_bound_on_h100() {
        let h100 = DeviceKind::H100Sxm.spec();
        let (m, k, n) = (8192u64, 4096u64, 4096u64);
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let bytes = 2 * (m * k + k * n + m * n);
        assert!(!is_memory_bound(arithmetic_intensity(flops, bytes), &h100));
    }

    #[test]
    fn zero_bytes_is_infinite_intensity() {
        assert!(arithmetic_intensity(1.0, 0).is_infinite());
    }
}
