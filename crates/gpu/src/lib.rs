//! Analytic GPU performance substrate.
//!
//! The paper's kernel-level argument is a roofline argument: LoRA's extra
//! operations are *memory-bandwidth-bound* (arithmetic intensity far below
//! the machine balance, Eq. 2), so their cost is proportional to the DRAM
//! traffic they generate, and fusion pays off exactly in proportion to the
//! traffic it removes. This crate reproduces that reasoning as an explicit
//! model:
//!
//! * [`DeviceSpec`] — peak FLOP/s, memory bandwidth, launch overhead and
//!   capacity for the GPUs used in the paper (H100, L40S, and the artifact's
//!   pre-tuned A100/RTX3090 targets);
//! * [`KernelProfile`] — the FLOPs and DRAM bytes of one kernel launch,
//!   produced by the lowering in `lorafusion-kernels`;
//! * [`CostModel`] — a calibrated roofline timing model with shape-dependent
//!   GEMM efficiency and access-pattern-dependent memory efficiency;
//! * [`Timeline`] / [`TrafficLedger`] — per-stream execution records used by
//!   the distributed simulator and the figure generators.

pub mod device;
pub mod kernel;
pub mod roofline;
pub mod timeline;

pub use device::{DType, DeviceKind, DeviceSpec};
pub use kernel::{Boundedness, CostModel, KernelClass, KernelCost, KernelProfile};
pub use roofline::{arithmetic_intensity, lora_down_projection_intensity, machine_balance};
pub use timeline::{Timeline, TrafficLedger};
