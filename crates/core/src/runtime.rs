//! Multi-adapter runtime coordinator.
//!
//! The paper's runtime "ensures token-to-adapter consistency, manages
//! resource sharing, and tracks gradients across job boundaries"
//! (Section 4). This module implements that coordinator with *real*
//! arithmetic at laptop scale: a shared frozen base weight, several LoRA
//! adapters fine-tuned jointly on mixed-adapter microbatches, per-adapter
//! gradient accumulation respecting global-batch boundaries, and AdamW
//! updates on the adapter weights only.
//!
//! Each adapter learns a synthetic regression task (match a hidden target
//! weight); losses are exactly reproducible across executors, which is how
//! the integration tests demonstrate the optimizations are lossless end to
//! end.

use std::collections::BTreeMap;

use lorafusion_gpu::DeviceKind;
use lorafusion_kernels::multi::MultiLoraLayer;
use lorafusion_kernels::{
    fused, multi, reference, AdapterWeights, LoraConfig, LoraGrads, Segment, TrafficModel,
};
use lorafusion_tensor::ops::{scale, sub};
use lorafusion_tensor::{Matrix, Pcg32};

use crate::optimizer::AdamW;

/// Which kernel executor runs the LoRA math.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// Unfused Torch-LoRA reference (per adapter segment).
    Reference,
    /// FusedLoRA (per adapter segment).
    Fused,
    /// FusedMultiLoRA (one pass over the mixed-adapter microbatch).
    FusedMulti,
}

/// Trainer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Input feature dimension `k`.
    pub k: usize,
    /// Output dimension `n`.
    pub n: usize,
    /// Adapter configs, one per job.
    pub adapters: Vec<LoraConfig>,
    /// Learning rate for AdamW on `A`/`B`.
    pub learning_rate: f32,
    /// RNG seed for base weights, targets and inputs.
    pub seed: u64,
    /// Executor to use.
    pub executor: ExecutorKind,
}

impl TrainerConfig {
    /// A small default configuration with `jobs` rank-4 adapters.
    pub fn small(jobs: usize, executor: ExecutorKind) -> Self {
        Self {
            k: 24,
            n: 16,
            adapters: (0..jobs)
                .map(|i| LoraConfig {
                    rank: 4,
                    alpha: 1.0,
                    dropout: 0.0,
                    seed: 900 + i as u64,
                })
                .collect(),
            learning_rate: 2e-2,
            seed: 7,
            executor,
        }
    }
}

/// The multi-adapter trainer.
#[derive(Debug, Clone)]
pub struct MultiAdapterTrainer {
    /// Shared frozen base plus per-job adapters.
    pub layer: MultiLoraLayer,
    /// Per-adapter target weights (the synthetic task each job learns).
    pub targets: Vec<Matrix>,
    executor: ExecutorKind,
    traffic: TrafficModel,
    opt_a: Vec<AdamW>,
    opt_b: Vec<AdamW>,
    accum: BTreeMap<usize, LoraGrads>,
    accum_tokens: BTreeMap<usize, usize>,
    /// Per-adapter dropout-counter cursor (token-to-adapter consistency).
    dropout_cursor: Vec<usize>,
    rng: Pcg32,
    k: usize,
    n: usize,
}

impl MultiAdapterTrainer {
    /// Builds a trainer from a configuration.
    pub fn new(config: &TrainerConfig) -> Self {
        let mut rng = Pcg32::seeded(config.seed);
        let std = 1.0 / (config.k as f32).sqrt();
        let w = Matrix::random_gaussian(config.k, config.n, std, &mut rng);
        let adapters: Vec<AdapterWeights> = config
            .adapters
            .iter()
            .map(|&cfg| AdapterWeights::init(config.k, config.n, cfg, &mut rng))
            .collect();
        // Each adapter's task: mimic `W + Delta_a` for a random low-rank
        // perturbation `Delta_a` (learnable by a rank-r adapter).
        let targets: Vec<Matrix> = adapters
            .iter()
            .map(|a| {
                let u = Matrix::random_gaussian(config.k, a.config.rank, std, &mut rng);
                let v = Matrix::random_gaussian(a.config.rank, config.n, std, &mut rng);
                let delta = lorafusion_tensor::matmul_nn(&u, &v).expect("shapes agree");
                let mut t = w.clone();
                lorafusion_tensor::ops::axpy(1.0, &delta, &mut t).expect("shapes agree");
                t
            })
            .collect();
        let opt_a = adapters
            .iter()
            .map(|a| AdamW::new(config.k, a.config.rank, config.learning_rate))
            .collect();
        let opt_b = adapters
            .iter()
            .map(|a| AdamW::new(a.config.rank, config.n, config.learning_rate))
            .collect();
        let n_adapters = adapters.len();
        Self {
            layer: MultiLoraLayer { w, adapters },
            targets,
            executor: config.executor,
            traffic: TrafficModel::for_device(&DeviceKind::H100Sxm.spec()),
            opt_a,
            opt_b,
            accum: BTreeMap::new(),
            accum_tokens: BTreeMap::new(),
            dropout_cursor: vec![0; n_adapters],
            rng,
            k: config.k,
            n: config.n,
        }
    }

    /// Draws a deterministic input batch of `tokens` rows.
    pub fn sample_input(&mut self, tokens: usize) -> Matrix {
        Matrix::random_uniform(tokens, self.k, 1.0, &mut self.rng)
    }

    /// Runs forward + backward on a mixed-adapter microbatch and
    /// accumulates per-adapter gradients. Returns the mean squared error
    /// per adapter present in the microbatch.
    ///
    /// Segments are validated and assigned dropout offsets from each
    /// adapter's token cursor, guaranteeing token-to-adapter consistency
    /// regardless of how the scheduler sliced the jobs.
    pub fn step_microbatch(
        &mut self,
        x: &Matrix,
        segments: &[(usize, usize)], // (adapter, token count) runs.
    ) -> lorafusion_kernels::Result<BTreeMap<usize, f64>> {
        // Materialize segments with dropout offsets.
        let mut segs = Vec::with_capacity(segments.len());
        let mut cursor = 0usize;
        for &(adapter, len) in segments {
            segs.push(Segment {
                adapter,
                start: cursor,
                end: cursor + len,
                dropout_row_offset: self.dropout_cursor[adapter],
            });
            self.dropout_cursor[adapter] += len;
            cursor += len;
        }

        // Targets: per segment, y_true = x_seg @ target_w.
        let mut y_true = Matrix::zeros(x.rows(), self.n);
        for seg in &segs {
            let x_seg = x.slice_rows(seg.start, seg.end)?;
            let t = lorafusion_tensor::matmul_nn(&x_seg, &self.targets[seg.adapter])?;
            y_true.write_rows(seg.start, &t)?;
        }

        // Forward/backward through the selected executor.
        let (y, grads, dx_unused) = match self.executor {
            ExecutorKind::FusedMulti => {
                let fwd = multi::forward(&self.layer, x, &segs, &self.traffic)?;
                let dy = loss_grad(&fwd.y, &y_true)?;
                let bwd = multi::backward(&self.layer, &fwd.saved, &dy, &self.traffic)?;
                (fwd.y, bwd.grads, bwd.dx)
            }
            ExecutorKind::Fused | ExecutorKind::Reference => {
                // Per-segment single-adapter execution.
                let mut y = Matrix::zeros(x.rows(), self.n);
                let mut grads: BTreeMap<usize, LoraGrads> = BTreeMap::new();
                for seg in &segs {
                    let single = self.layer.as_single(seg.adapter)?;
                    let x_seg = x.slice_rows(seg.start, seg.end)?;
                    let y_seg_true = y_true.slice_rows(seg.start, seg.end)?;
                    let (y_seg, seg_grads) = if self.executor == ExecutorKind::Fused {
                        let fwd =
                            fused::forward(&single, &x_seg, seg.dropout_row_offset, &self.traffic)?;
                        let dy = loss_grad(&fwd.y, &y_seg_true)?;
                        let bwd = fused::backward(&single, &fwd.saved, &dy, &self.traffic)?;
                        (fwd.y, bwd.grads)
                    } else {
                        let fwd = reference::forward(
                            &single,
                            &x_seg,
                            seg.dropout_row_offset,
                            &self.traffic,
                        )?;
                        let dy = loss_grad(&fwd.y, &y_seg_true)?;
                        let bwd = reference::backward(&single, &fwd.saved, &dy, &self.traffic)?;
                        (fwd.y, bwd.grads)
                    };
                    y.write_rows(seg.start, &y_seg)?;
                    let entry = grads.entry(seg.adapter).or_insert_with(|| {
                        LoraGrads::zeros(
                            self.k,
                            self.n,
                            self.layer.adapters[seg.adapter].config.rank,
                        )
                    });
                    entry.accumulate(&seg_grads)?;
                }
                (y, grads, Matrix::zeros(1, 1))
            }
        };
        let _ = dx_unused;

        // Accumulate gradients per adapter across microbatches.
        for (adapter, g) in grads {
            let entry = self.accum.entry(adapter).or_insert_with(|| {
                LoraGrads::zeros(self.k, self.n, self.layer.adapters[adapter].config.rank)
            });
            entry.accumulate(&g)?;
        }

        // Per-adapter MSE of this microbatch.
        let mut losses = BTreeMap::new();
        for seg in &segs {
            let err = sub(
                &y.slice_rows(seg.start, seg.end)?,
                &y_true.slice_rows(seg.start, seg.end)?,
            )?;
            let mse =
                lorafusion_tensor::ops::frobenius_norm(&err).powi(2) / (err.len().max(1) as f64);
            let tokens = self.accum_tokens.entry(seg.adapter).or_insert(0);
            *tokens += seg.end - seg.start;
            let agg = losses.entry(seg.adapter).or_insert(0.0);
            *agg += mse;
        }
        Ok(losses)
    }

    /// Applies the accumulated gradients of `adapter` (its optimizer step
    /// at a global-batch boundary) and clears its accumulator.
    pub fn apply_adapter_step(&mut self, adapter: usize) {
        if let Some(g) = self.accum.remove(&adapter) {
            let tokens = self.accum_tokens.remove(&adapter).unwrap_or(1).max(1) as f32;
            let da = scale(1.0 / tokens, &g.da);
            let db = scale(1.0 / tokens, &g.db);
            self.opt_a[adapter].step(&mut self.layer.adapters[adapter].a, &da);
            self.opt_b[adapter].step(&mut self.layer.adapters[adapter].b, &db);
        }
    }

    /// Current loss of `adapter` on a fresh probe batch (no dropout, no
    /// state mutation).
    pub fn probe_loss(&self, adapter: usize, tokens: usize, seed: u64) -> f64 {
        let mut rng = Pcg32::seeded(seed);
        let x = Matrix::random_uniform(tokens, self.k, 1.0, &mut rng);
        let single = self.layer.as_single(adapter).expect("adapter exists");
        let w_eff = single.effective_weight().expect("shapes agree");
        let y = lorafusion_tensor::matmul_nn(&x, &w_eff).expect("shapes agree");
        let y_true =
            lorafusion_tensor::matmul_nn(&x, &self.targets[adapter]).expect("shapes agree");
        let err = sub(&y, &y_true).expect("shapes agree");
        lorafusion_tensor::ops::frobenius_norm(&err).powi(2) / err.len() as f64
    }
}

fn loss_grad(y: &Matrix, y_true: &Matrix) -> lorafusion_kernels::Result<Matrix> {
    // d/dy of mean squared error over all elements: 2 (y - y_true) / N.
    let diff = sub(y, y_true)?;
    Ok(scale(2.0 / y.len().max(1) as f32, &diff))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_training(executor: ExecutorKind, steps: usize) -> (Vec<f64>, Vec<f64>) {
        let config = TrainerConfig {
            executor,
            ..TrainerConfig::small(2, executor)
        };
        let mut trainer = MultiAdapterTrainer::new(&config);
        let before: Vec<f64> = (0..2).map(|a| trainer.probe_loss(a, 64, 99)).collect();
        let mut mb_losses = Vec::new();
        for _ in 0..steps {
            let x = trainer.sample_input(24);
            let losses = trainer.step_microbatch(&x, &[(0, 12), (1, 12)]).unwrap();
            mb_losses.push(losses[&0]);
            trainer.apply_adapter_step(0);
            trainer.apply_adapter_step(1);
        }
        let after: Vec<f64> = (0..2).map(|a| trainer.probe_loss(a, 64, 99)).collect();
        let _ = mb_losses;
        (before, after)
    }

    #[test]
    fn training_reduces_loss_for_every_adapter() {
        let (before, after) = run_training(ExecutorKind::FusedMulti, 120);
        for a in 0..2 {
            assert!(
                after[a] < before[a] * 0.5,
                "adapter {a}: {} -> {}",
                before[a],
                after[a]
            );
        }
    }

    #[test]
    fn executors_reach_the_same_losses() {
        // The losslessness claim, end-to-end: reference, fused and
        // fused-multi executors produce the same training trajectory.
        let (_, ref_after) = run_training(ExecutorKind::Reference, 40);
        let (_, fused_after) = run_training(ExecutorKind::Fused, 40);
        let (_, multi_after) = run_training(ExecutorKind::FusedMulti, 40);
        for a in 0..2 {
            assert!(
                (ref_after[a] - fused_after[a]).abs() < 1e-6 * (1.0 + ref_after[a]),
                "fused diverged: {} vs {}",
                ref_after[a],
                fused_after[a]
            );
            assert!(
                (ref_after[a] - multi_after[a]).abs() < 1e-6 * (1.0 + ref_after[a]),
                "multi diverged: {} vs {}",
                ref_after[a],
                multi_after[a]
            );
        }
    }

    #[test]
    fn gradient_accumulation_respects_global_batches() {
        let config = TrainerConfig::small(1, ExecutorKind::FusedMulti);
        let mut trainer = MultiAdapterTrainer::new(&config);
        // `B` starts at zero (identity residual), so the first visible
        // update lands on `B`.
        let b_before = trainer.layer.adapters[0].b.clone();
        // Two microbatches without an optimizer step: weights unchanged.
        for _ in 0..2 {
            let x = trainer.sample_input(8);
            trainer.step_microbatch(&x, &[(0, 8)]).unwrap();
        }
        assert_eq!(trainer.layer.adapters[0].b, b_before);
        // The step applies the accumulated gradient.
        trainer.apply_adapter_step(0);
        assert_ne!(trainer.layer.adapters[0].b, b_before);
    }

    #[test]
    fn dropout_cursor_advances_per_adapter() {
        let mut config = TrainerConfig::small(2, ExecutorKind::FusedMulti);
        for a in &mut config.adapters {
            a.dropout = 0.2;
        }
        let mut trainer = MultiAdapterTrainer::new(&config);
        let x = trainer.sample_input(10);
        trainer.step_microbatch(&x, &[(0, 4), (1, 6)]).unwrap();
        assert_eq!(trainer.dropout_cursor, vec![4, 6]);
        let x2 = trainer.sample_input(5);
        trainer.step_microbatch(&x2, &[(1, 5)]).unwrap();
        assert_eq!(trainer.dropout_cursor, vec![4, 11]);
    }
}
