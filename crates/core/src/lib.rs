//! LoRAFusion — efficient LoRA fine-tuning for LLMs (Rust reproduction).
//!
//! This crate is the public face of the reproduction: it wires the fused
//! kernels (`lorafusion-kernels`), the multi-LoRA scheduler
//! (`lorafusion-sched`) and the distributed simulator (`lorafusion-dist`)
//! into the system workflow of the paper's Fig. 8:
//!
//! 1. describe fine-tuning [`job`]s (adapter config + dataset);
//! 2. let the [`planner`] extract dataset statistics, propose a microbatch
//!    token capacity via the parallelism profiler, group adapters, build
//!    the schedule and estimate throughput, iterating to the best
//!    configuration;
//! 3. execute with the [`runtime`] — a real-arithmetic multi-adapter
//!    training loop (used at laptop scale to demonstrate losslessness and
//!    convergence) backed by the [`optimizer`] (AdamW on adapter weights).
//!
//! # Examples
//!
//! ```
//! use lorafusion::prelude::*;
//!
//! // Two fine-tuning jobs sharing a base model.
//! let jobs = vec![
//!     FinetuneJob::synthetic("xsum-a", DatasetPreset::XSum, 32, 8, 1),
//!     FinetuneJob::synthetic("cnn-b", DatasetPreset::CnnDailyMail, 32, 8, 2),
//! ];
//! let planner = Planner::new(ModelPreset::Llama8b, ClusterSpec::h100(1));
//! let plan = planner.plan(&jobs).unwrap();
//! assert!(plan.predicted_tokens_per_second > 0.0);
//! ```

pub mod job;
pub mod optimizer;
pub mod planner;
pub mod runtime;

pub use job::FinetuneJob;
pub use optimizer::AdamW;
pub use planner::{Plan, Planner, PlannerError};
pub use runtime::{ExecutorKind, MultiAdapterTrainer, TrainerConfig};

/// Convenient glob import for downstream users and the examples.
pub mod prelude {
    pub use crate::job::FinetuneJob;
    pub use crate::planner::{Plan, Planner};
    pub use crate::runtime::{ExecutorKind, MultiAdapterTrainer, TrainerConfig};
    pub use lorafusion_data::{Dataset, DatasetPreset};
    pub use lorafusion_dist::baselines::SystemKind;
    pub use lorafusion_dist::cluster::ClusterSpec;
    pub use lorafusion_dist::model_config::ModelPreset;
    pub use lorafusion_kernels::LoraConfig;
}
