//! AdamW optimizer for adapter weights.

use lorafusion_tensor::Matrix;

/// AdamW state for one parameter matrix.
///
/// The frozen base model is never updated; only the LoRA `A`/`B` matrices
/// carry optimizer state (Section 2.1's memory argument).
#[derive(Debug, Clone, PartialEq)]
pub struct AdamW {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    m: Matrix,
    v: Matrix,
    t: u32,
}

impl AdamW {
    /// Creates optimizer state for a parameter of the given shape.
    pub fn new(rows: usize, cols: usize, lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            t: 0,
        }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u32 {
        self.t
    }

    /// Applies one update to `param` given `grad`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the state (programming error).
    pub fn step(&mut self, param: &mut Matrix, grad: &Matrix) {
        assert_eq!(param.shape(), self.m.shape(), "parameter shape mismatch");
        assert_eq!(grad.shape(), self.m.shape(), "gradient shape mismatch");
        self.t += 1;
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        let p = param.as_mut_slice();
        let g = grad.as_slice();
        let m = self.m.as_mut_slice();
        let v = self.v.as_mut_slice();
        for i in 0..p.len() {
            m[i] = b1 * m[i] + (1.0 - b1) * g[i];
            v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
            let m_hat = m[i] / bias1;
            let v_hat = v[i] / bias2;
            p[i] -= self.lr * (m_hat / (v_hat.sqrt() + self.eps) + self.weight_decay * p[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = sum((x - 3)^2), grad = 2(x - 3).
        let mut x = Matrix::zeros(2, 2);
        let mut opt = AdamW::new(2, 2, 0.1);
        for _ in 0..500 {
            let grad = x.map(|v| 2.0 * (v - 3.0));
            opt.step(&mut x, &grad);
        }
        for &v in x.as_slice() {
            assert!((v - 3.0).abs() < 0.05, "converged to {v}");
        }
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut x = Matrix::full(1, 4, 10.0);
        let mut opt = AdamW::new(1, 4, 0.01);
        opt.weight_decay = 0.1;
        let zero_grad = Matrix::zeros(1, 4);
        for _ in 0..100 {
            opt.step(&mut x, &zero_grad);
        }
        for &v in x.as_slice() {
            assert!(v < 10.0, "weight decay must shrink weights, got {v}");
        }
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn shape_mismatch_panics() {
        let mut x = Matrix::zeros(2, 2);
        let mut opt = AdamW::new(2, 2, 0.1);
        opt.step(&mut x, &Matrix::zeros(3, 3));
    }
}
