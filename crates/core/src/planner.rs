//! The system workflow of Fig. 8.
//!
//! Given a set of fine-tuning jobs, the planner (1) extracts dataset
//! statistics, (2) proposes microbatch token-capacity candidates bounded
//! by the memory model, (3) for each candidate builds the multi-LoRA
//! schedule and simulates its throughput on the target cluster, and (4)
//! returns the best configuration together with its schedule and the
//! predicted throughput.

use core::fmt;

use lorafusion_dist::baselines::{evaluate_custom, Batching, CustomConfig, PipelineMode};
use lorafusion_dist::cluster::ClusterSpec;
use lorafusion_dist::layer_cost::KernelStrategy;
use lorafusion_dist::memory::MemoryPlan;
use lorafusion_dist::model_config::ModelPreset;
use lorafusion_sched::{schedule_jobs, Schedule, SchedulerConfig};
use lorafusion_tensor::pool;

use crate::job::{to_adapter_jobs, FinetuneJob};

/// Planner errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannerError {
    /// No jobs were provided.
    NoJobs,
    /// No capacity candidate fits on the device (model too large).
    NoFeasibleCapacity,
    /// Scheduling failed for every feasible capacity.
    SchedulingFailed,
}

impl fmt::Display for PlannerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlannerError::NoJobs => write!(f, "no fine-tuning jobs provided"),
            PlannerError::NoFeasibleCapacity => {
                write!(f, "no microbatch capacity fits in GPU memory")
            }
            PlannerError::SchedulingFailed => write!(f, "scheduling failed for all capacities"),
        }
    }
}

impl std::error::Error for PlannerError {}

/// A finished plan: the configuration LoRAFusion will execute.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Chosen microbatch token capacity.
    pub capacity: usize,
    /// The multi-LoRA schedule.
    pub schedule: Schedule,
    /// Simulated end-to-end throughput (tokens/sec).
    pub predicted_tokens_per_second: f64,
    /// Simulated mean pipeline bubble ratio (None on a single GPU).
    pub predicted_bubble_ratio: Option<f64>,
    /// Capacities that were evaluated, with their predicted throughput
    /// (the profiler trace of Fig. 8's iteration loop).
    pub candidates: Vec<(usize, f64)>,
}

/// The LoRAFusion planner.
#[derive(Debug, Clone)]
pub struct Planner {
    model: ModelPreset,
    cluster: ClusterSpec,
    /// LoRA rank assumed for memory/cost models.
    pub rank: usize,
    /// Scheduler knobs reused across candidates.
    pub scheduler: SchedulerConfig,
}

impl Planner {
    /// Creates a planner for `model` on `cluster`.
    pub fn new(model: ModelPreset, cluster: ClusterSpec) -> Self {
        Self {
            model,
            cluster,
            rank: 16,
            scheduler: SchedulerConfig::default(),
        }
    }

    /// Capacity candidates that fit in memory: powers of two from 2048 up
    /// to the largest in-flight-feasible size (and at least the longest
    /// sample).
    pub fn feasible_capacities(&self, jobs: &[FinetuneJob]) -> Vec<usize> {
        let cfg = self.model.config();
        let stages = self.cluster.gpus.max(1);
        let plan = MemoryPlan::for_gpu(&cfg, jobs.len(), self.rank, stages, 1);
        let device = self.cluster.device.spec();
        let max_in_flight = plan.max_tokens_in_flight(&device) as usize;
        // Stage 0 holds up to `stages` microbatches in flight.
        let max_capacity = max_in_flight / stages.max(1);
        let longest = jobs
            .iter()
            .flat_map(|j| j.dataset.lengths())
            .max()
            .unwrap_or(0);
        let mut c = 2048usize;
        let mut out = Vec::new();
        while c <= max_capacity {
            if c >= longest {
                out.push(c);
            }
            c *= 2;
        }
        out
    }

    /// Runs the full Fig. 8 loop and returns the best plan.
    pub fn plan(&self, jobs: &[FinetuneJob]) -> Result<Plan, PlannerError> {
        if jobs.is_empty() {
            return Err(PlannerError::NoJobs);
        }
        let capacities = self.feasible_capacities(jobs);
        if capacities.is_empty() {
            return Err(PlannerError::NoFeasibleCapacity);
        }
        let adapter_jobs = to_adapter_jobs(jobs);

        // Simulate every candidate concurrently on the worker pool.
        // `parallel_map` returns results in candidate order, and the argmax
        // below takes the first strict maximum, so the chosen plan is
        // identical to the serial sweep at any thread count.
        let sims = pool::parallel_map(pool::current(), capacities.len(), |i| {
            let capacity = capacities[i];
            let custom = CustomConfig {
                model: self.model,
                cluster: self.cluster.clone(),
                rank: self.rank,
                batching: Batching::Scheduled {
                    capacity,
                    use_milp: self.scheduler.use_milp,
                    use_merge: self.scheduler.use_merge,
                },
                kernel: KernelStrategy::FusedMultiLora { adapters: 1 },
                pipeline: PipelineMode::Continuous,
                sequential_jobs: false,
            };
            evaluate_custom(&custom, &adapter_jobs)
        });

        let mut best: Option<(usize, f64, Option<f64>)> = None;
        let mut candidates = Vec::new();
        for (&capacity, sim) in capacities.iter().zip(&sims) {
            if sim.oom {
                candidates.push((capacity, 0.0));
                continue;
            }
            candidates.push((capacity, sim.tokens_per_second));
            if best.as_ref().is_none_or(|b| sim.tokens_per_second > b.1) {
                best = Some((capacity, sim.tokens_per_second, sim.bubble_ratio));
            }
        }

        // Only the winner needs a schedule built (the serial loop scheduled
        // every improvement and discarded all but the last).
        let (capacity, tokens_per_second, bubble_ratio) =
            best.ok_or(PlannerError::SchedulingFailed)?;
        let sched_cfg = SchedulerConfig {
            capacity,
            pipeline_stages: self.cluster.gpus.max(1),
            ..self.scheduler.clone()
        };
        let schedule =
            schedule_jobs(&adapter_jobs, &sched_cfg).map_err(|_| PlannerError::SchedulingFailed)?;
        Ok(Plan {
            capacity,
            schedule,
            predicted_tokens_per_second: tokens_per_second,
            predicted_bubble_ratio: bubble_ratio,
            candidates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lorafusion_data::DatasetPreset;

    fn jobs() -> Vec<FinetuneJob> {
        vec![
            FinetuneJob::synthetic("a", DatasetPreset::XSum, 48, 16, 1),
            FinetuneJob::synthetic("b", DatasetPreset::CnnDailyMail, 48, 16, 2),
            FinetuneJob::synthetic("c", DatasetPreset::XSum, 48, 16, 3),
            FinetuneJob::synthetic("d", DatasetPreset::Mixed, 48, 16, 4),
        ]
    }

    #[test]
    fn plans_a_feasible_configuration() {
        let planner = Planner::new(ModelPreset::Llama8b, ClusterSpec::h100(1));
        let plan = planner.plan(&jobs()).unwrap();
        assert!(plan.predicted_tokens_per_second > 0.0);
        assert!(!plan.schedule.microbatches.is_empty());
        assert!(plan.candidates.len() > 1, "profiler must sweep capacities");
        // The chosen capacity is the argmax of the sweep.
        let best = plan
            .candidates
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(plan.capacity, best.0);
    }

    #[test]
    fn empty_jobs_are_rejected() {
        let planner = Planner::new(ModelPreset::Llama8b, ClusterSpec::h100(1));
        assert_eq!(planner.plan(&[]), Err(PlannerError::NoJobs));
    }

    #[test]
    fn infeasible_model_is_detected() {
        // 70B does not fit on a single RTX 3090.
        let cluster = lorafusion_dist::cluster::ClusterSpec {
            device: lorafusion_gpu::DeviceKind::Rtx3090,
            gpus: 1,
            gpus_per_node: 1,
            intra_link: lorafusion_dist::cluster::Link::PCIE,
            inter_link: lorafusion_dist::cluster::Link::PCIE,
        };
        let planner = Planner::new(ModelPreset::Llama70b, cluster);
        assert_eq!(planner.plan(&jobs()), Err(PlannerError::NoFeasibleCapacity));
    }
}
