//! Fine-tuning job descriptions.

use lorafusion_data::{Dataset, DatasetPreset};
use lorafusion_kernels::LoraConfig;
use lorafusion_sched::AdapterJob;

/// One LoRA fine-tuning job: an adapter, its data, and batch settings.
#[derive(Debug, Clone, PartialEq)]
pub struct FinetuneJob {
    /// Human-readable job name.
    pub name: String,
    /// LoRA adapter hyper-parameters.
    pub lora: LoraConfig,
    /// The training dataset (the scheduler consumes sample lengths).
    pub dataset: Dataset,
    /// Samples per optimizer step.
    pub global_batch_size: usize,
}

impl FinetuneJob {
    /// Creates a job over an existing dataset.
    pub fn new(
        name: impl Into<String>,
        lora: LoraConfig,
        dataset: Dataset,
        global_batch_size: usize,
    ) -> Self {
        Self {
            name: name.into(),
            lora,
            dataset,
            global_batch_size,
        }
    }

    /// Creates a job with a synthetic dataset drawn from a paper preset.
    ///
    /// `seed` controls the sample draw; the adapter uses rank-16 defaults
    /// with a seed-derived dropout stream.
    pub fn synthetic(
        name: impl Into<String>,
        preset: DatasetPreset,
        samples: usize,
        global_batch_size: usize,
        seed: u64,
    ) -> Self {
        Self {
            name: name.into(),
            lora: LoraConfig {
                seed,
                ..LoraConfig::with_rank(16)
            },
            dataset: Dataset::from_preset(preset, samples, seed),
            global_batch_size,
        }
    }

    /// The scheduler view of this job, bound to adapter slot `adapter`.
    pub fn to_adapter_job(&self, adapter: usize) -> AdapterJob {
        AdapterJob {
            adapter,
            samples: self.dataset.samples.clone(),
            global_batch_size: self.global_batch_size,
        }
    }

    /// Total tokens in the job's dataset.
    pub fn total_tokens(&self) -> usize {
        self.dataset.total_tokens()
    }
}

/// Converts a set of jobs to scheduler jobs with sequential adapter slots.
pub fn to_adapter_jobs(jobs: &[FinetuneJob]) -> Vec<AdapterJob> {
    jobs.iter()
        .enumerate()
        .map(|(i, j)| j.to_adapter_job(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_jobs_are_deterministic() {
        let a = FinetuneJob::synthetic("a", DatasetPreset::XSum, 16, 4, 7);
        let b = FinetuneJob::synthetic("a", DatasetPreset::XSum, 16, 4, 7);
        assert_eq!(a, b);
        assert_eq!(a.dataset.len(), 16);
        assert_eq!(a.lora.rank, 16);
    }

    #[test]
    fn adapter_job_conversion_assigns_slots() {
        let jobs = vec![
            FinetuneJob::synthetic("a", DatasetPreset::XSum, 8, 4, 1),
            FinetuneJob::synthetic("b", DatasetPreset::WikiSum, 8, 4, 2),
        ];
        let ajobs = to_adapter_jobs(&jobs);
        assert_eq!(ajobs[0].adapter, 0);
        assert_eq!(ajobs[1].adapter, 1);
        assert_eq!(ajobs[1].samples.len(), 8);
    }
}
