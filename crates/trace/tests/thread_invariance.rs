//! Labeled metrics and quantile extraction must be bitwise-identical
//! however the recording work is partitioned across threads.
//!
//! This is the metrics half of the crate's thread-count-invariance
//! contract (the span half is `Cat::Work` structure): labeled cells are
//! plain `AtomicU64`s, increments commute, and the log-linear quantile
//! histogram reads exact bucket counts, so recording one fixed workload
//! under 1, 2, 4, or 8 worker threads must produce identical totals,
//! identical bucket vectors, and identical p50/p95/p99.

use lorafusion_trace::hist;
use lorafusion_trace::label::Scope;

/// Deterministic value stream (xorshift) spanning several octaves.
fn workload(n: usize) -> Vec<u64> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % 1_000_000
        })
        .collect()
}

/// One run's observation: total count, bucket vector, [p50, p95, p99].
type Observation = (u64, Vec<(u64, u64)>, [u64; 3]);

#[test]
fn labeled_metrics_are_thread_count_invariant() {
    let vals = workload(40_000);
    let mut reference: Option<Observation> = None;
    for tc in [1usize, 2, 4, 8] {
        // Distinct label per thread count: each pass writes fresh cells,
        // so the comparison is between whole runs, not shared state.
        let label = tc.to_string();
        let scope = Scope::new(&[("tc", &label)]);
        let counter = scope.counter("test.invariance.events");
        let hist = scope.quantile_histogram("test.invariance.values");
        std::thread::scope(|s| {
            for chunk in vals.chunks(vals.len().div_ceil(tc)) {
                s.spawn(move || {
                    for &v in chunk {
                        counter.incr();
                        hist.record(v);
                    }
                });
            }
        });
        let observed = (
            counter.get(),
            hist.buckets(),
            [
                hist.quantile(0.50),
                hist.quantile(0.95),
                hist.quantile(0.99),
            ],
        );
        assert_eq!(observed.0, vals.len() as u64);
        match &reference {
            None => reference = Some(observed),
            Some(expect) => assert_eq!(
                &observed, expect,
                "labeled metrics diverged at {tc} threads"
            ),
        }
    }
}

#[test]
fn sharded_histograms_merge_to_the_same_quantiles() {
    // Per-thread local shards merged in any order must equal the shared
    // histogram: the merge contract behind post-hoc aggregation.
    let vals = workload(10_000);
    let bounds = hist::bounds();
    let shard = |chunk: &[u64]| -> Vec<(u64, u64)> {
        let mut counts: Vec<(u64, u64)> = bounds.iter().map(|&b| (b, 0)).collect();
        counts.push((u64::MAX, 0));
        for &v in chunk {
            counts[hist::bucket_index(v)].1 += 1;
        }
        counts
    };
    let shards: Vec<Vec<(u64, u64)>> = vals.chunks(vals.len().div_ceil(4)).map(shard).collect();

    let forward = shards
        .iter()
        .skip(1)
        .fold(shards[0].clone(), |acc, s| hist::merge_counts(&acc, s));
    let backward = shards
        .iter()
        .rev()
        .skip(1)
        .fold(shards.last().unwrap().clone(), |acc, s| {
            hist::merge_counts(&acc, s)
        });
    assert_eq!(forward, backward, "merge must be order-invariant");

    let whole = shard(&vals);
    assert_eq!(forward, whole);
    for q in [0.5, 0.95, 0.99] {
        assert_eq!(
            hist::quantile_from_buckets(&forward, q),
            hist::quantile_from_buckets(&whole, q)
        );
    }
}
