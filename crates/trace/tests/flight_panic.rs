//! Post-mortem contract: a forced panic with `dump_on_panic` armed must
//! leave a flight-recorder dump on disk that passes `trace::validate`.
//!
//! Runs as its own integration-test binary so the installed panic hook
//! and the flight-enable flag cannot leak into unrelated unit tests.

use std::panic;

#[test]
fn forced_panic_writes_a_valid_flight_dump() {
    let path = std::env::temp_dir().join(format!(
        "lorafusion_flight_panic_{}.trace.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    lorafusion_trace::flight::dump_on_panic(&path);

    // Activity before the crash: spans land in the per-thread rings
    // (dump_on_panic enables flight recording) plus an explicit note.
    for i in 0..8u64 {
        let _span = lorafusion_trace::span!("flight.step", i = i);
        lorafusion_trace::flight::note("flight.progress", i);
    }

    let result = panic::catch_unwind(|| {
        let _span = lorafusion_trace::span!("flight.doomed");
        panic!("forced panic: flight-recorder integration test");
    });
    assert!(result.is_err(), "the panic must actually fire");

    let stats = lorafusion_trace::validate::validate_trace_file(&path)
        .expect("flight dump must be a valid Chrome trace");
    assert!(stats.complete_events >= 8, "ring spans present: {stats:?}");
    assert!(stats.counter_events >= 8, "notes present: {stats:?}");
    assert!(
        stats.pids.contains(&lorafusion_trace::flight::FLIGHT_PID),
        "events are on the flight process: {stats:?}"
    );

    // The recorder itself counts successful dumps.
    assert!(lorafusion_trace::metrics::counter("trace.flight.dumps").get() >= 1);
    let _ = std::fs::remove_file(&path);
}
