//! Chrome trace-event exporter (the JSON format ui.perfetto.dev and
//! `chrome://tracing` load).
//!
//! One file combines three sources:
//!
//! - **pid 1, "lorafusion cpu"**: one track per real thread that
//!   recorded spans, rendered as `ph:"X"` complete events with
//!   `cat:"work"` / `cat:"task"` and the span's `key = value` args.
//! - **pid 2, "simulated gpu"**: one track per simulated stream from
//!   [`crate::sim`], kernels as `cat:"sim"` and bubbles as
//!   `cat:"idle"` events.
//! - **counter tracks**: `ph:"C"` events from the metrics registry's
//!   timestamped samples, plus one final sample taken at write time so
//!   every registered counter shows up even if the run never sampled.
//!
//! The writer is idempotent: it snapshots (never drains) the buffers
//! and rewrites the whole file, so [`crate::flush`] can run at every
//! phase boundary and the last write wins.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::metrics;
use crate::sim;
use crate::span::{self, Cat};

const CPU_PID: u64 = 1;
const SIM_PID: u64 = 2;

fn escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn num(value: f64) -> f64 {
    if value.is_finite() {
        value
    } else {
        0.0
    }
}

/// Incremental trace-event JSON builder. Crate-visible so the flight
/// recorder renders its post-mortem dumps through the same escaping
/// and schema as the live exporter.
pub(crate) struct Events {
    out: String,
    first: bool,
}

impl Events {
    pub(crate) fn new() -> Self {
        Events {
            out: String::from("{\"traceEvents\":[\n"),
            first: true,
        }
    }

    fn start(&mut self) -> &mut String {
        if self.first {
            self.first = false;
        } else {
            self.out.push_str(",\n");
        }
        &mut self.out
    }

    pub(crate) fn metadata(&mut self, pid: u64, tid: u64, which: &str, name: &str) {
        let out = self.start();
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"{which}\",\"args\":{{\"name\":\""
        );
        escape(out, name);
        out.push_str("\"}}");
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, f64)],
    ) {
        let out = self.start();
        out.push_str("{\"ph\":\"X\",\"name\":\"");
        escape(out, name);
        let _ = write!(
            out,
            "\",\"cat\":\"{cat}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{}",
            num(ts_us),
            num(dur_us)
        );
        if !args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape(out, key);
                let _ = write!(out, "\":{}", num(*value));
            }
            out.push('}');
        }
        out.push('}');
    }

    pub(crate) fn counter(&mut self, pid: u64, name: &str, ts_us: f64, value: f64) {
        let out = self.start();
        out.push_str("{\"ph\":\"C\",\"name\":\"");
        escape(out, name);
        let _ = write!(
            out,
            "\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"args\":{{\"value\":{}}}}}",
            num(ts_us),
            num(value)
        );
    }

    pub(crate) fn finish(mut self) -> String {
        self.out.push_str("\n]}\n");
        self.out
    }
}

/// Render the current capture state to a trace-event JSON string.
pub fn render_trace() -> String {
    // A final sample guarantees every registered counter appears as a
    // track even if the run never called sample_counters() itself.
    metrics::sample_counters();

    let threads = span::all_thread_events();
    let sim_labels = sim::sim_track_labels();
    let sim_events = sim::sim_events();
    let samples = metrics::counter_samples();

    let mut events = Events::new();
    events.metadata(CPU_PID, 0, "process_name", "lorafusion cpu");
    for t in &threads {
        if !t.events.is_empty() {
            events.metadata(CPU_PID, t.tid, "thread_name", &t.name);
        }
    }
    if !sim_labels.is_empty() {
        events.metadata(SIM_PID, 0, "process_name", "simulated gpu");
        for (i, label) in sim_labels.iter().enumerate() {
            events.metadata(SIM_PID, i as u64 + 1, "thread_name", label);
        }
    }

    let mut arg_buf: Vec<(&str, f64)> = Vec::new();
    for t in &threads {
        for e in &t.events {
            arg_buf.clear();
            arg_buf.extend(e.arg_slice().iter().map(|&(k, v)| (k, v as f64)));
            events.complete(
                CPU_PID,
                t.tid,
                e.name,
                match e.cat {
                    Cat::Work => "work",
                    Cat::Task => "task",
                },
                e.start_ns as f64 / 1e3,
                e.dur_ns as f64 / 1e3,
                &arg_buf,
            );
        }
    }
    for e in &sim_events {
        events.complete(
            SIM_PID,
            e.track,
            &e.name,
            if e.idle { "idle" } else { "sim" },
            e.start_us,
            e.dur_us,
            &[],
        );
    }
    for s in &samples {
        events.counter(CPU_PID, s.name, s.ts_us, s.value);
    }
    events.finish()
}

/// Render and write the trace to `path` (parent directories created).
pub fn write_trace(path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, render_trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_trace_str;

    #[test]
    fn rendered_trace_validates() {
        let _serial = crate::test_serial();
        crate::enable_capture();
        span::drain_all_events();
        {
            let _outer = crate::span!("chrome.outer", m = 3usize);
            let _inner = crate::task_span!("chrome.inner");
        }
        let track = sim::sim_track("chrome test stream");
        sim::sim_complete(track, "k_fused", 0.0, 42.0);
        sim::sim_idle(track, 42.0, 8.0);
        metrics::counter("test.chrome.counter").add(2);
        metrics::sample_counters();
        let json = render_trace();
        crate::disable();

        let stats = validate_trace_str(&json).expect("emitted trace must validate");
        assert!(stats.complete_events >= 4, "spans + sim events present");
        assert!(stats.idle_events >= 1, "idle event present");
        assert!(stats.counter_tracks >= 1, "counter track present");
        assert!(stats.pids.contains(&CPU_PID) && stats.pids.contains(&SIM_PID));
        // Escaping: a hostile name must not break the JSON.
        span::drain_all_events();
    }

    #[test]
    fn escape_handles_specials() {
        let mut out = String::new();
        escape(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }
}
