//! Flight recorder: fixed-capacity per-thread rings of recent events,
//! dumpable as a valid Chrome trace after the fact.
//!
//! Tracing captures *everything* and is usually off in production; the
//! flight recorder is the opposite trade — always-affordable capture
//! of only the *recent* past, so a scheduler anomaly (a cold re-solve
//! storm, a quality-ε breach, a panic) can be reconstructed post-hoc
//! without having paid for a full trace. Each thread that records
//! events owns one ring of [`RING_CAPACITY`] slots; when the ring is
//! full the oldest event is overwritten (the overwrite count is kept,
//! never silent).
//!
//! Two event sources feed the rings when [`enabled`] is on:
//!
//! * **spans** — every [`crate::span`] guard reports its completed
//!   interval on drop (this works even when full tracing is off: the
//!   guard goes live for the flight recorder alone);
//! * **notes** — explicit [`note`] calls marking counter-style moments
//!   (the scheduler notes each repair-ladder rung hit).
//!
//! Draining is *only* through the public API: an explicit
//! [`FlightRecorder::snapshot`] (merged, time-ordered, non-destructive)
//! or [`FlightRecorder::dump_to`], which renders the rings as a
//! `trace.json` that passes [`crate::validate`]. The `lorafusion-lint`
//! `flight-ring-encapsulation` rule enforces that the ring internals
//! (`FlightRing`, `flight_ring_*`) never leak outside this module.
//!
//! [`dump_on_panic`] arms a panic hook that writes the dump before
//! unwinding continues — set `LORAFUSION_FLIGHT_DUMP=<path>` and a
//! crashing bench leaves a loadable post-mortem behind. README.md
//! ("Panic-dump triage") walks through reading one.

use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};

/// Slots per thread ring. Big enough to hold the last few scheduler
/// events' worth of spans, small enough that an armed flight recorder
/// costs a few tens of KB per thread, fixed so recording never
/// allocates after a ring's first event.
pub const RING_CAPACITY: usize = 256;

/// What a recorded event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A completed span interval.
    Span,
    /// A counter-style note (`value` carries the noted number).
    Note,
}

/// One event in a flight ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    pub kind: FlightKind,
    pub name: &'static str,
    pub start_ns: u64,
    /// Span duration; 0 for notes.
    pub dur_ns: u64,
    /// Note value; 0 for spans.
    pub value: u64,
    /// Flight-recorder thread id (its own numbering, not the span
    /// layer's).
    pub tid: u64,
}

struct FlightRingState {
    /// Ring storage; grows to `RING_CAPACITY` then stays fixed.
    events: Vec<FlightEvent>,
    /// Next overwrite position once the ring is full.
    head: usize,
    /// Total events ever pushed (so `total - len` = overwritten).
    total: u64,
}

struct FlightRing {
    tid: u64,
    name: String,
    state: Mutex<FlightRingState>,
}

static FLIGHT_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

fn rings() -> &'static Mutex<Vec<Arc<FlightRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<FlightRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: RefCell<Option<Arc<FlightRing>>> = const { RefCell::new(None) };
}

/// Locks a mutex even when a panicking thread poisoned it — the dump
/// path runs inside panic hooks and must not double-panic.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn local_ring() -> Arc<FlightRing> {
    LOCAL_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(ring) = slot.as_ref() {
            return Arc::clone(ring);
        }
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{tid}"));
        let ring = Arc::new(FlightRing {
            tid,
            name,
            state: Mutex::new(FlightRingState {
                events: Vec::with_capacity(RING_CAPACITY),
                head: 0,
                total: 0,
            }),
        });
        lock_unpoisoned(rings()).push(Arc::clone(&ring));
        *slot = Some(Arc::clone(&ring));
        ring
    })
}

fn flight_ring_push(mut event: FlightEvent) {
    let ring = local_ring();
    event.tid = ring.tid;
    let mut state = lock_unpoisoned(&ring.state);
    state.total += 1;
    if state.events.len() < RING_CAPACITY {
        state.events.push(event);
    } else {
        let head = state.head;
        state.events[head] = event;
        state.head = (head + 1) % RING_CAPACITY;
    }
}

/// One ring's events in recording order plus its census, as drained by
/// the public snapshot path.
fn flight_ring_snapshot() -> Vec<(u64, String, Vec<FlightEvent>, u64)> {
    let rings = lock_unpoisoned(rings());
    rings
        .iter()
        .map(|ring| {
            let state = lock_unpoisoned(&ring.state);
            let mut events = Vec::with_capacity(state.events.len());
            events.extend_from_slice(&state.events[state.head..]);
            events.extend_from_slice(&state.events[..state.head]);
            (ring.tid, ring.name.clone(), events, state.total)
        })
        .collect()
}

/// Whether flight recording is armed. One relaxed load; the span layer
/// checks this on every guard open/drop.
#[inline]
pub fn enabled() -> bool {
    FLIGHT_ENABLED.load(Ordering::Relaxed)
}

/// Arm flight recording (rings start filling).
pub fn enable() {
    FLIGHT_ENABLED.store(true, Ordering::Relaxed);
}

/// Disarm flight recording. Already-buffered events are kept and still
/// snapshot/dump.
pub fn disable() {
    FLIGHT_ENABLED.store(false, Ordering::Relaxed);
}

/// Record a completed span interval into this thread's ring. Called by
/// the span layer on guard drop; callable directly for synthesized
/// intervals.
#[inline]
pub fn record_span(name: &'static str, start_ns: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    flight_ring_push(FlightEvent {
        kind: FlightKind::Span,
        name,
        start_ns,
        dur_ns,
        value: 0,
        tid: 0,
    });
}

/// Record a counter-style note (name must be a static string; use
/// [`crate::metrics::intern`] for dynamic names).
#[inline]
pub fn note(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    flight_ring_push(FlightEvent {
        kind: FlightKind::Note,
        name,
        start_ns: crate::now_ns(),
        dur_ns: 0,
        value,
        tid: 0,
    });
}

/// The public read side of the flight rings.
pub struct FlightRecorder;

impl FlightRecorder {
    /// All buffered events, merged across threads and sorted by
    /// `(start_ns, tid)` — a deterministic function of the ring
    /// contents. Non-destructive.
    pub fn snapshot() -> Vec<FlightEvent> {
        let mut all: Vec<FlightEvent> = flight_ring_snapshot()
            .into_iter()
            .flat_map(|(_, _, events, _)| events)
            .collect();
        all.sort_by_key(|e| (e.start_ns, e.tid, e.name));
        all
    }

    /// Total events overwritten (pushed beyond ring capacity) across
    /// all threads — how much history the rings have already lost.
    pub fn overwritten() -> u64 {
        flight_ring_snapshot()
            .iter()
            .map(|(_, _, events, total)| total - events.len() as u64)
            .sum()
    }

    /// Render the rings as Chrome trace-event JSON (pid
    /// [`FLIGHT_PID`], one track per recorded thread; spans as
    /// `ph:"X"` `cat:"flight"` events, notes as `ph:"C"` counters).
    /// The output passes [`crate::validate::validate_trace_str`].
    pub fn render() -> String {
        let rings = flight_ring_snapshot();
        let mut events = crate::chrome::Events::new();
        events.metadata(FLIGHT_PID, 0, "process_name", "flight recorder");
        for (tid, name, ring_events, _) in &rings {
            if !ring_events.is_empty() {
                events.metadata(FLIGHT_PID, *tid, "thread_name", name);
            }
        }
        for (tid, _, ring_events, _) in &rings {
            for e in ring_events {
                match e.kind {
                    FlightKind::Span => events.complete(
                        FLIGHT_PID,
                        *tid,
                        e.name,
                        "flight",
                        e.start_ns as f64 / 1e3,
                        e.dur_ns as f64 / 1e3,
                        &[],
                    ),
                    FlightKind::Note => {
                        events.counter(FLIGHT_PID, e.name, e.start_ns as f64 / 1e3, e.value as f64)
                    }
                }
            }
        }
        events.finish()
    }

    /// Write [`FlightRecorder::render`] to `path` (parent directories
    /// created); counts the dump in `trace.flight.dumps`.
    pub fn dump_to(path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, Self::render())?;
        crate::metrics::counter("trace.flight.dumps").incr();
        Ok(())
    }
}

/// Process id the flight tracks render under (CPU spans are pid 1, the
/// simulated GPU pid 2).
pub const FLIGHT_PID: u64 = 3;

static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
static HOOK: Once = Once::new();

/// Arm flight recording and install a panic hook that dumps the rings
/// to `path` before unwinding continues. The hook chains to the
/// previous one (the default backtrace printer still runs) and fires
/// for caught panics too — a `catch_unwind` test exercises exactly
/// this. Re-calling replaces the dump path; the hook installs once.
pub fn dump_on_panic(path: &Path) {
    *lock_unpoisoned(&DUMP_PATH) = Some(path.to_path_buf());
    enable();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(path) = lock_unpoisoned(&DUMP_PATH).clone() {
                if let Err(e) = FlightRecorder::dump_to(&path) {
                    eprintln!("flight dump to {} failed: {e}", path.display());
                } else {
                    eprintln!("flight recorder dumped to {}", path.display());
                }
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_capture_spans_and_notes_and_render_validates() {
        let _serial = crate::test_serial();
        enable();
        record_span("flight.test.span", 10, 5);
        note("flight.test.note", 42);
        disable();
        let snap = FlightRecorder::snapshot();
        assert!(snap
            .iter()
            .any(|e| e.kind == FlightKind::Span && e.name == "flight.test.span"));
        assert!(snap
            .iter()
            .any(|e| e.kind == FlightKind::Note && e.value == 42));
        let json = FlightRecorder::render();
        let stats = crate::validate::validate_trace_str(&json).expect("flight dump validates");
        assert!(stats.complete_events >= 1);
        assert!(stats.counter_events >= 1);
        assert!(stats.pids.contains(&FLIGHT_PID));
    }

    #[test]
    fn ring_overwrites_oldest_at_fixed_capacity() {
        let _serial = crate::test_serial();
        enable();
        for i in 0..(RING_CAPACITY as u64 + 50) {
            note("flight.test.wrap", i);
        }
        disable();
        let snap = FlightRecorder::snapshot();
        let wraps: Vec<u64> = snap
            .iter()
            .filter(|e| e.name == "flight.test.wrap")
            .map(|e| e.value)
            .collect();
        assert!(wraps.len() <= RING_CAPACITY);
        // The survivors are the *most recent* values.
        assert!(wraps.contains(&(RING_CAPACITY as u64 + 49)));
        assert!(!wraps.contains(&0), "oldest events were overwritten");
        assert!(FlightRecorder::overwritten() >= 50);
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _serial = crate::test_serial();
        disable();
        let before = FlightRecorder::snapshot().len();
        note("flight.test.inert", 1);
        record_span("flight.test.inert", 0, 1);
        assert_eq!(FlightRecorder::snapshot().len(), before);
    }
}
