//! Global metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Metrics are always on — an increment is one relaxed atomic add on a
//! leaked `&'static AtomicU64` cell, so handles are `Copy` and a hot
//! call site pays the name lookup once by caching the handle in a
//! `OnceLock` (see `lorafusion-tensor`'s pool for the pattern).
//!
//! The registry feeds two exporters: [`metrics_snapshot`] (a compact
//! name→value dump rendered to JSON by `lorafusion-bench`) and
//! [`sample_counters`], which appends timestamped samples that
//! [`crate::chrome`] turns into Perfetto counter tracks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    pub fn tag(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

struct Entry {
    name: &'static str,
    kind: Kind,
    cells: &'static [AtomicU64],
    /// Histogram bucket upper bounds (inclusive); empty otherwise.
    bounds: &'static [u64],
}

fn registry() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn leak_cells(n: usize) -> &'static [AtomicU64] {
    Box::leak((0..n).map(|_| AtomicU64::new(0)).collect::<Box<[_]>>())
}

fn register(name: &'static str, kind: Kind, bounds: &'static [u64]) -> &'static [AtomicU64] {
    let mut registry = registry().lock().unwrap();
    if let Some(entry) = registry.iter().find(|e| e.name == name) {
        assert_eq!(
            entry.kind, kind,
            "metric {name:?} registered twice with different kinds"
        );
        return entry.cells;
    }
    let cells = leak_cells(if kind == Kind::Histogram {
        bounds.len() + 1
    } else {
        1
    });
    registry.push(Entry {
        name,
        kind,
        cells,
        bounds,
    });
    cells
}

/// Intern a dynamic metric name (deduplicated, leaked once). Use for
/// reporter scalars whose names are built at runtime; prefer string
/// literals at fixed call sites.
pub fn intern(name: &str) -> &'static str {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut names = NAMES.get_or_init(|| Mutex::new(Vec::new())).lock().unwrap();
    if let Some(existing) = names.iter().find(|n| **n == name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    names.push(leaked);
    leaked
}

/// Monotonic counter.
#[derive(Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
    /// Reset to zero (compatibility shims and tests only).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins gauge holding an `f64`.
#[derive(Clone, Copy)]
pub struct Gauge(&'static AtomicU64);

impl Gauge {
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds, plus
/// an implicit overflow bucket.
#[derive(Clone, Copy)]
pub struct Histogram {
    cells: &'static [AtomicU64],
    bounds: &'static [u64],
}

impl Histogram {
    #[inline]
    pub fn record(&self, value: u64) {
        // First bound >= value; bounds are strictly ascending, so a
        // binary search keeps recording O(log buckets) even for the
        // ~250-bucket log-linear quantile table.
        let idx = self.bounds.partition_point(|&b| b < value);
        self.cells[idx].fetch_add(1, Ordering::Relaxed);
    }
    pub fn total(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
    /// `(upper_bound, count)` pairs; the overflow bucket reports
    /// `u64::MAX` as its bound.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let bound = self.bounds.get(i).copied().unwrap_or(u64::MAX);
                (bound, c.load(Ordering::Relaxed))
            })
            .collect()
    }
    /// Deterministic quantile of the recorded values under the
    /// [`crate::hist`] contract (upper bound of the bucket where the
    /// cumulative count reaches `ceil(q · total)`; 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        crate::hist::quantile_from_buckets(&self.buckets(), q)
    }
}

/// Look up or create the counter `name`.
pub fn counter(name: &'static str) -> Counter {
    Counter(&register(name, Kind::Counter, &[])[0])
}

/// Look up or create the gauge `name`.
pub fn gauge(name: &'static str) -> Gauge {
    Gauge(&register(name, Kind::Gauge, &[])[0])
}

/// Look up or create the histogram `name` with the given bucket upper
/// bounds (must be sorted ascending; validated on first registration).
pub fn histogram(name: &'static str, bounds: &'static [u64]) -> Histogram {
    assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "histogram {name:?} bounds must be strictly ascending"
    );
    Histogram {
        cells: register(name, Kind::Histogram, bounds),
        bounds,
    }
}

/// Look up or create the log-linear quantile histogram `name`: the
/// global [`crate::hist::bounds`] bucket table, merge-order-invariant
/// `u64` counts, exact p50/p95/p99 via [`Histogram::quantile`]. This
/// is the default histogram for new telemetry — explicit-bounds
/// [`histogram`] remains for metrics whose buckets *are* the contract.
pub fn quantile_histogram(name: &'static str) -> Histogram {
    histogram(name, crate::hist::bounds())
}

/// Point-in-time value of one registered metric.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    pub name: &'static str,
    pub kind: Kind,
    /// Counter count, gauge value, or histogram total.
    pub value: f64,
    /// Histogram `(upper_bound, count)` pairs; empty otherwise.
    pub buckets: Vec<(u64, u64)>,
}

/// Snapshot every registered metric, sorted by name.
pub fn metrics_snapshot() -> Vec<MetricSnapshot> {
    let registry = registry().lock().unwrap();
    let mut out: Vec<MetricSnapshot> = registry
        .iter()
        .map(|e| {
            let raw: Vec<u64> = e.cells.iter().map(|c| c.load(Ordering::Relaxed)).collect();
            let (value, buckets) = match e.kind {
                Kind::Counter => (raw[0] as f64, Vec::new()),
                Kind::Gauge => (f64::from_bits(raw[0]), Vec::new()),
                Kind::Histogram => (
                    raw.iter().sum::<u64>() as f64,
                    raw.iter()
                        .enumerate()
                        .map(|(i, &c)| (e.bounds.get(i).copied().unwrap_or(u64::MAX), c))
                        .collect(),
                ),
            };
            MetricSnapshot {
                name: e.name,
                kind: e.kind,
                value,
                buckets,
            }
        })
        .collect();
    out.sort_by_key(|s| s.name);
    out
}

/// One timestamped counter-track sample for the Chrome exporter.
#[derive(Debug, Clone)]
pub struct CounterSample {
    pub name: &'static str,
    pub ts_us: f64,
    pub value: f64,
}

fn samples() -> &'static Mutex<Vec<CounterSample>> {
    static SAMPLES: OnceLock<Mutex<Vec<CounterSample>>> = OnceLock::new();
    SAMPLES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Hard cap on stored samples so long sweeps (fig14 runs dozens of
/// simulations) cannot balloon the trace; drops are counted in
/// `trace.samples.dropped`, never silent.
const MAX_SAMPLES: usize = 100_000;

/// Record one sample of every counter and gauge at the current trace
/// timestamp. Call at coarse boundaries (phase starts, sim
/// completions, reporter finish) — per-increment sampling would swamp
/// the trace.
pub fn sample_counters() {
    let ts_us = crate::now_us();
    let registry = registry().lock().unwrap();
    let mut samples = samples().lock().unwrap();
    for e in registry.iter() {
        let value = match e.kind {
            Kind::Counter => e.cells[0].load(Ordering::Relaxed) as f64,
            Kind::Gauge => f64::from_bits(e.cells[0].load(Ordering::Relaxed)),
            Kind::Histogram => continue,
        };
        if samples.len() >= MAX_SAMPLES {
            drop(samples);
            drop(registry);
            counter("trace.samples.dropped").incr();
            return;
        }
        samples.push(CounterSample {
            name: e.name,
            ts_us,
            value,
        });
    }
}

/// Snapshot the recorded counter samples (non-destructive).
pub fn counter_samples() -> Vec<CounterSample> {
    samples().lock().unwrap().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let c = counter("test.counter.basic");
        let before = c.get();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), before + 5);
        // Same name returns the same cell.
        counter("test.counter.basic").incr();
        assert_eq!(c.get(), before + 6);
        c.reset();
        assert_eq!(c.get(), 0);

        let g = gauge("test.gauge.basic");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);

        let h = histogram("test.hist.basic", &[8, 64, 512]);
        h.record(3);
        h.record(64);
        h.record(1_000_000);
        assert_eq!(h.total(), 3);
        let buckets = h.buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (8, 1));
        assert_eq!(buckets[1], (64, 1));
        assert_eq!(buckets[3], (u64::MAX, 1));
    }

    #[test]
    fn snapshot_contains_registered_metrics() {
        counter("test.snapshot.counter").add(7);
        gauge("test.snapshot.gauge").set(1.25);
        let snap = metrics_snapshot();
        let names: Vec<&str> = snap.iter().map(|s| s.name).collect();
        assert!(names.contains(&"test.snapshot.counter"));
        assert!(names.contains(&"test.snapshot.gauge"));
        assert!(names.windows(2).all(|w| w[0] <= w[1]), "sorted by name");
        let g = snap
            .iter()
            .find(|s| s.name == "test.snapshot.gauge")
            .unwrap();
        assert_eq!(g.value, 1.25);
        assert_eq!(g.kind, Kind::Gauge);
    }

    #[test]
    fn interning_deduplicates() {
        let a = intern("test.intern.name");
        let b = intern(&format!("test.intern.{}", "name"));
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn sampling_records_counters() {
        counter("test.sample.counter").add(3);
        sample_counters();
        let samples = counter_samples();
        assert!(samples
            .iter()
            .any(|s| s.name == "test.sample.counter" && s.value >= 3.0));
    }
}
