//! Simulated-GPU tracks: the event-driven simulators (pipeline stages,
//! `gpu::Timeline` streams) register one track per stream and replay
//! their kernel / idle intervals here; the Chrome exporter renders
//! them as a second Perfetto process alongside the real CPU threads.
//!
//! Simulated time is seconds from the simulator's own epoch; callers
//! convert to microseconds. Both the track count and the total event
//! count are capped — fig14 alone runs dozens of pipeline simulations
//! with thousands of events each — and every drop is counted in the
//! metrics registry (`trace.sim.tracks_dropped`,
//! `trace.sim.events_dropped`), never silent.

use std::sync::{Mutex, OnceLock};

use crate::metrics::counter;

/// Handle to one simulated stream track. A dropped handle (track cap
/// reached or tracing disabled) swallows its events.
#[derive(Debug, Clone, Copy)]
pub struct SimTrack {
    tid: u64,
}

impl SimTrack {
    pub fn is_live(&self) -> bool {
        self.tid != 0
    }
}

/// One simulated interval (kernel execution or idle gap).
#[derive(Debug, Clone)]
pub struct SimEvent {
    /// 1-based track ordinal (tid within the sim process).
    pub track: u64,
    pub name: String,
    pub start_us: f64,
    pub dur_us: f64,
    pub idle: bool,
}

fn tracks() -> &'static Mutex<Vec<String>> {
    static TRACKS: OnceLock<Mutex<Vec<String>>> = OnceLock::new();
    TRACKS.get_or_init(|| Mutex::new(Vec::new()))
}

fn events() -> &'static Mutex<Vec<SimEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<SimEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

const MAX_SIM_TRACKS: usize = 128;
const MAX_SIM_EVENTS: usize = 250_000;

/// Register a simulated stream track labelled `label`. Returns a dead
/// handle when tracing is disabled or the track cap is hit.
pub fn sim_track(label: &str) -> SimTrack {
    if !crate::enabled() {
        return SimTrack { tid: 0 };
    }
    let mut tracks = tracks().lock().unwrap();
    if tracks.len() >= MAX_SIM_TRACKS {
        counter("trace.sim.tracks_dropped").incr();
        return SimTrack { tid: 0 };
    }
    tracks.push(label.to_owned());
    SimTrack {
        tid: tracks.len() as u64,
    }
}

fn push(track: SimTrack, name: &str, start_us: f64, dur_us: f64, idle: bool) {
    if !track.is_live() {
        return;
    }
    let mut events = events().lock().unwrap();
    if events.len() >= MAX_SIM_EVENTS {
        drop(events);
        counter("trace.sim.events_dropped").incr();
        return;
    }
    events.push(SimEvent {
        track: track.tid,
        name: name.to_owned(),
        start_us,
        dur_us,
        idle,
    });
}

/// Record one simulated kernel interval on `track`.
pub fn sim_complete(track: SimTrack, name: &str, start_us: f64, dur_us: f64) {
    push(track, name, start_us, dur_us, false);
}

/// Record one simulated idle gap (pipeline bubble) on `track`.
pub fn sim_idle(track: SimTrack, start_us: f64, dur_us: f64) {
    push(track, "idle", start_us, dur_us, true);
}

/// Snapshot of the registered track labels, in tid order (tid = index + 1).
pub fn sim_track_labels() -> Vec<String> {
    tracks().lock().unwrap().clone()
}

/// Snapshot of all simulated events (non-destructive).
pub fn sim_events() -> Vec<SimEvent> {
    events().lock().unwrap().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_and_events_round_trip() {
        let _serial = crate::test_serial();
        crate::enable_capture();
        let track = sim_track("test stream 0");
        assert!(track.is_live());
        sim_complete(track, "k1", 0.0, 10.0);
        sim_idle(track, 10.0, 2.5);
        let events = sim_events();
        let mine: Vec<_> = events.iter().filter(|e| e.track == track.tid).collect();
        assert_eq!(mine.len(), 2);
        assert!(!mine[0].idle);
        assert_eq!(mine[1].name, "idle");
        assert!(mine[1].idle);
        crate::disable();
        let dead = sim_track("while disabled");
        assert!(!dead.is_live());
        sim_complete(dead, "ignored", 0.0, 1.0);
    }
}
