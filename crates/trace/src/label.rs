//! Labeled metrics: a `Scope` layer over the flat registry.
//!
//! A labeled metric is an ordinary registry metric whose *name* carries
//! a canonical label block: `scheduler.events{class=arrive}`. The
//! canonical form is what makes labels deterministic:
//!
//! * label keys are sorted (byte order) and must be unique, so the
//!   rendered name is independent of the call-site argument order;
//! * keys and values are restricted to `[A-Za-z0-9_.:-]` — no braces,
//!   separators, or whitespace — so the name parses back unambiguously
//!   ([`check_labeled_name`], enforced by `trace::validate` on every
//!   exported counter track);
//! * the rendered suffix is interned through a `BTreeMap` keyed by the
//!   canonical string, so the same label set always resolves to the
//!   same leaked `&'static str` in the same registry slot regardless
//!   of which thread interned it first.
//!
//! **Hot-path contract:** resolving a [`Scope`] or a handle allocates
//! (it renders and interns the name); the returned `Counter`/`Gauge`/
//! `Histogram` handles are `Copy` atomics with zero-alloc increments.
//! Call sites therefore resolve once and cache — a `OnceLock` for
//! static label sets (see `sched::online`'s `Counters`), a
//! `BTreeMap<id, Counter>` for dynamic ones (per-adapter placement
//! counts) where only the *first* observation of a label value pays
//! the allocation (warmup), matching the span layer's contract that
//! steady-state instrumentation never allocates.
//!
//! Thread-count invariance is inherited from the registry: labeled
//! cells are plain `AtomicU64`s, increments commute, and the canonical
//! name fixes the registry identity, so totals, histogram buckets, and
//! extracted quantiles are bitwise-identical however the recording
//! work was partitioned across threads (asserted by
//! `crates/trace/tests/thread_invariance.rs`).

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::metrics::{self, Counter, Gauge, Histogram};

/// Maximum labels per scope; matches the span arg budget so a labeled
/// metric can always be mirrored onto a span.
pub const MAX_LABELS: usize = 4;

/// Quantile suffixes the exporter may append after a label block.
pub const QUANTILE_SUFFIXES: [&str; 3] = [".p50", ".p95", ".p99"];

fn valid_part(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | ':' | '-'))
}

fn intern_suffix(rendered: &str) -> &'static str {
    static SUFFIXES: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let mut map = SUFFIXES
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap();
    if let Some(&existing) = map.get(rendered) {
        return existing;
    }
    let leaked: &'static str = Box::leak(rendered.to_owned().into_boxed_str());
    map.insert(rendered.to_owned(), leaked);
    leaked
}

/// A resolved, canonicalized label set. Cheap to copy; construction
/// validates, sorts, and interns (allocates — cache the scope or the
/// handles it hands out, per the module contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scope {
    /// Interned `{k=v,…}` block, or `""` for the unlabeled scope.
    suffix: &'static str,
}

impl Scope {
    /// The empty scope: metrics resolve to their bare names.
    pub const fn unlabeled() -> Self {
        Scope { suffix: "" }
    }

    /// Build a scope from `key = value` pairs. Panics on empty or
    /// invalid-charset parts, duplicate keys, or more than
    /// [`MAX_LABELS`] pairs — label sets are code, not data, and a
    /// malformed one is a bug at the call site.
    pub fn new(pairs: &[(&str, &str)]) -> Self {
        assert!(
            pairs.len() <= MAX_LABELS,
            "scope holds at most {MAX_LABELS} labels, got {}",
            pairs.len()
        );
        if pairs.is_empty() {
            return Self::unlabeled();
        }
        let mut sorted: Vec<(&str, &str)> = pairs.to_vec();
        sorted.sort_by(|a, b| a.0.cmp(b.0));
        let mut rendered = String::from("{");
        for (i, &(k, v)) in sorted.iter().enumerate() {
            assert!(valid_part(k), "invalid label key {k:?}");
            assert!(valid_part(v), "invalid label value {v:?}");
            if i > 0 {
                assert_ne!(sorted[i - 1].0, k, "duplicate label key {k:?}");
                rendered.push(',');
            }
            rendered.push_str(k);
            rendered.push('=');
            rendered.push_str(v);
        }
        rendered.push('}');
        Scope {
            suffix: intern_suffix(&rendered),
        }
    }

    /// The interned label block (`""` when unlabeled).
    pub fn suffix(&self) -> &'static str {
        self.suffix
    }

    /// The full canonical metric name for `base` under this scope.
    pub fn render(&self, base: &str) -> String {
        format!("{base}{}", self.suffix)
    }

    fn interned(&self, base: &str) -> &'static str {
        assert!(valid_part(base), "invalid metric base name {base:?}");
        if self.suffix.is_empty() {
            metrics::intern(base)
        } else {
            metrics::intern(&self.render(base))
        }
    }

    /// Resolve the labeled counter `base{…}` (allocates; cache the
    /// returned handle).
    pub fn counter(&self, base: &str) -> Counter {
        metrics::counter(self.interned(base))
    }

    /// Resolve the labeled gauge `base{…}`.
    pub fn gauge(&self, base: &str) -> Gauge {
        metrics::gauge(self.interned(base))
    }

    /// Resolve the labeled log-linear quantile histogram `base{…}`
    /// (the global [`crate::hist::bounds`] table).
    pub fn quantile_histogram(&self, base: &str) -> Histogram {
        metrics::quantile_histogram(self.interned(base))
    }
}

/// Check a metric/counter-track name for label well-formedness:
/// either no `{` at all, or exactly one canonical `{k=v,…}` block —
/// valid charset, keys strictly ascending — followed by nothing or one
/// of the [`QUANTILE_SUFFIXES`]. `trace::validate` applies this to
/// every exported counter track.
pub fn check_labeled_name(name: &str) -> Result<(), String> {
    let Some(open) = name.find('{') else {
        // Unlabeled names must still be brace-free on the right.
        if name.contains('}') {
            return Err(format!("name {name:?} has '}}' without '{{'"));
        }
        return Ok(());
    };
    let base = &name[..open];
    if !valid_part(base) {
        return Err(format!("name {name:?} has an invalid base {base:?}"));
    }
    let rest = &name[open + 1..];
    let Some(close) = rest.find('}') else {
        return Err(format!("name {name:?} has an unterminated label block"));
    };
    let block = &rest[..close];
    let tail = &rest[close + 1..];
    if !(tail.is_empty() || QUANTILE_SUFFIXES.contains(&tail)) {
        return Err(format!(
            "name {name:?} has trailing {tail:?} after the label block \
             (only a quantile suffix is allowed)"
        ));
    }
    if block.contains('{') || tail.contains('{') || tail.contains('}') {
        return Err(format!("name {name:?} has nested or repeated braces"));
    }
    let mut prev_key: Option<&str> = None;
    for pair in block.split(',') {
        let Some((k, v)) = pair.split_once('=') else {
            return Err(format!("name {name:?}: label {pair:?} is not key=value"));
        };
        if !valid_part(k) || !valid_part(v) {
            return Err(format!("name {name:?}: label {pair:?} has invalid charset"));
        }
        if let Some(prev) = prev_key {
            if prev >= k {
                return Err(format!(
                    "name {name:?}: label keys not strictly ascending ({prev:?} then {k:?})"
                ));
            }
        }
        prev_key = Some(k);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_canonicalizes_order_and_interns() {
        let a = Scope::new(&[("class", "arrive"), ("adapter", "3")]);
        let b = Scope::new(&[("adapter", "3"), ("class", "arrive")]);
        assert_eq!(a, b, "argument order must not matter");
        assert_eq!(a.suffix(), "{adapter=3,class=arrive}");
        assert!(std::ptr::eq(a.suffix(), b.suffix()), "interned once");
        assert_eq!(
            a.render("scheduler.events"),
            "scheduler.events{adapter=3,class=arrive}"
        );
        assert_eq!(Scope::unlabeled().render("x.y"), "x.y");
    }

    #[test]
    fn labeled_handles_hit_the_same_cell() {
        let s1 = Scope::new(&[("k", "v")]);
        let s2 = Scope::new(&[("k", "v")]);
        let c1 = s1.counter("test.label.counter");
        let c2 = s2.counter("test.label.counter");
        let before = c1.get();
        c2.add(3);
        assert_eq!(c1.get(), before + 3, "same canonical name, same cell");
        let h = s1.quantile_histogram("test.label.hist");
        h.record(100);
        assert!(h.total() >= 1);
    }

    #[test]
    #[should_panic(expected = "duplicate label key")]
    fn duplicate_keys_panic() {
        let _ = Scope::new(&[("k", "a"), ("k", "b")]);
    }

    #[test]
    #[should_panic(expected = "invalid label value")]
    fn invalid_charset_panics() {
        let _ = Scope::new(&[("k", "a b")]);
    }

    #[test]
    fn name_checker_accepts_canonical_and_rejects_malformed() {
        assert!(check_labeled_name("gemm.calls").is_ok());
        assert!(check_labeled_name("scheduler.events{class=arrive}").is_ok());
        assert!(check_labeled_name("a.b{k=1,l=2}.p95").is_ok());
        assert!(check_labeled_name("a.b{k=1}{l=2}").is_err(), "two blocks");
        assert!(check_labeled_name("a.b{l=2,k=1}").is_err(), "unsorted");
        assert!(check_labeled_name("a.b{k=1,k=2}").is_err(), "duplicate");
        assert!(check_labeled_name("a.b{k}").is_err(), "no value");
        assert!(check_labeled_name("a.b{k=v").is_err(), "unterminated");
        assert!(check_labeled_name("a.b{k=v}x").is_err(), "bad tail");
        assert!(check_labeled_name("a.b{k=v w}").is_err(), "bad charset");
        assert!(check_labeled_name("a}b").is_err(), "stray close");
        assert!(check_labeled_name("{k=v}").is_err(), "empty base");
    }
}
