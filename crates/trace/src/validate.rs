//! Schema validation for emitted Chrome trace-event JSON.
//!
//! The workspace has a JSON *emitter* (`lorafusion-bench`) but no
//! parser, so this module carries a minimal recursive-descent one —
//! just enough to load a trace file back and check the invariants
//! Perfetto relies on: every event has a `ph`; `"X"` events carry
//! `name`/`ts`/`dur`/`pid`/`tid` with non-negative durations; `"C"`
//! events carry a numeric `args` value; metadata events name a
//! process or thread. `scripts/ci.sh` gates on this via the
//! `trace_validate` binary.

use std::collections::BTreeSet;
use std::path::Path;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), String> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected literal {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'n') => self.eat_literal("null").map(|_| Value::Null),
            Some(b't') => self.eat_literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|_| Value::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: best effort; lone
                            // surrogates become the replacement char.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }
}

/// Parse a JSON document.
pub fn parse_json(text: &str) -> Result<Value, String> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing garbage after document"));
    }
    Ok(value)
}

/// Summary of a validated trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    pub events: usize,
    pub complete_events: usize,
    pub counter_events: usize,
    pub meta_events: usize,
    /// Complete events with `cat == "idle"` (simulated bubbles).
    pub idle_events: usize,
    /// Complete events with `cat == "sim"` (simulated kernels).
    pub sim_kernel_events: usize,
    /// Distinct counter-track names.
    pub counter_tracks: usize,
    /// The counter-track names themselves, so gates can require a
    /// *specific* counter (e.g. `scheduler.repack.warm_solves`) made it
    /// into the export, not just "some counters".
    pub counter_names: BTreeSet<String>,
    pub pids: BTreeSet<u64>,
    /// Distinct `(pid, tid)` tracks carrying complete events.
    pub tids: BTreeSet<(u64, u64)>,
}

fn require_num(event: &Value, key: &str, index: usize) -> Result<f64, String> {
    event
        .get(key)
        .and_then(Value::as_num)
        .ok_or_else(|| format!("event {index}: missing or non-numeric {key:?}"))
}

fn require_str<'a>(event: &'a Value, key: &str, index: usize) -> Result<&'a str, String> {
    event
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("event {index}: missing or non-string {key:?}"))
}

/// Validate a trace-event JSON document against the Chrome schema
/// subset Perfetto needs. Accepts both the `{"traceEvents": [...]}`
/// wrapper and a bare top-level array.
pub fn validate_trace_str(text: &str) -> Result<TraceStats, String> {
    let doc = parse_json(text)?;
    let events = match &doc {
        Value::Arr(_) => &doc,
        Value::Obj(_) => doc
            .get("traceEvents")
            .ok_or("top-level object lacks \"traceEvents\"")?,
        _ => return Err("top level must be an object or array".into()),
    };
    let events = events.as_arr().ok_or("\"traceEvents\" must be an array")?;

    let mut stats = TraceStats::default();
    for (index, event) in events.iter().enumerate() {
        if !matches!(event, Value::Obj(_)) {
            return Err(format!("event {index}: not an object"));
        }
        stats.events += 1;
        let ph = require_str(event, "ph", index)?;
        match ph {
            "X" => {
                require_str(event, "name", index)?;
                require_num(event, "ts", index)?;
                let dur = require_num(event, "dur", index)?;
                if dur < 0.0 {
                    return Err(format!("event {index}: negative dur {dur}"));
                }
                let pid = require_num(event, "pid", index)? as u64;
                let tid = require_num(event, "tid", index)? as u64;
                stats.pids.insert(pid);
                stats.tids.insert((pid, tid));
                stats.complete_events += 1;
                match event.get("cat").and_then(Value::as_str) {
                    Some("idle") => stats.idle_events += 1,
                    Some("sim") => stats.sim_kernel_events += 1,
                    _ => {}
                }
            }
            "C" => {
                let name = require_str(event, "name", index)?;
                crate::label::check_labeled_name(name)
                    .map_err(|e| format!("event {index}: counter name {name:?}: {e}"))?;
                require_num(event, "ts", index)?;
                let pid = require_num(event, "pid", index)? as u64;
                stats.pids.insert(pid);
                let args = event
                    .get("args")
                    .ok_or_else(|| format!("event {index}: counter lacks args"))?;
                let ok = matches!(args, Value::Obj(fields)
                    if !fields.is_empty() && fields.iter().all(|(_, v)| v.as_num().is_some()));
                if !ok {
                    return Err(format!("event {index}: counter args must be numeric"));
                }
                stats.counter_names.insert(name.to_owned());
                stats.counter_events += 1;
            }
            "M" => {
                let name = require_str(event, "name", index)?;
                if name == "process_name" || name == "thread_name" {
                    let args = event.get("args").and_then(|a| a.get("name"));
                    if args.and_then(Value::as_str).is_none() {
                        return Err(format!("event {index}: metadata {name:?} lacks args.name"));
                    }
                }
                stats.meta_events += 1;
            }
            _ => {
                // Other phases (B/E/i/s/f/...) are legal Chrome events
                // we simply don't emit; count them but don't reject.
            }
        }
    }
    stats.counter_tracks = stats.counter_names.len();
    Ok(stats)
}

/// Validate the trace file at `path`.
pub fn validate_trace_file(path: &Path) -> Result<TraceStats, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    validate_trace_str(&text)
}

/// Summary of a validated `*.metrics.json` snapshot.
#[derive(Debug, Clone, Default)]
pub struct MetricsStats {
    /// Scalar (counter/gauge) metric names.
    pub scalar_names: BTreeSet<String>,
    /// Histogram metric names.
    pub histogram_names: BTreeSet<String>,
}

/// Validate a metrics snapshot (`<trace stem>.metrics.json`) emitted by
/// `lorafusion-bench`'s reporter: a single object mapping metric names
/// to either a number (counter/gauge) or a histogram object
/// `{total, p50, p95, p99, buckets: [[bound, count], ...]}` with
/// strictly ascending bounds and `total == sum(counts)`. Every name
/// must satisfy the labeled-metric grammar
/// ([`crate::label::check_labeled_name`]).
pub fn validate_metrics_str(text: &str) -> Result<MetricsStats, String> {
    let doc = parse_json(text)?;
    let Value::Obj(fields) = &doc else {
        return Err("metrics snapshot: top level must be an object".into());
    };
    let mut stats = MetricsStats::default();
    for (name, value) in fields {
        crate::label::check_labeled_name(name).map_err(|e| format!("metric name {name:?}: {e}"))?;
        match value {
            Value::Num(_) => {
                stats.scalar_names.insert(name.clone());
            }
            Value::Obj(_) => {
                let total = value
                    .get("total")
                    .and_then(Value::as_num)
                    .ok_or_else(|| format!("histogram {name:?}: missing numeric \"total\""))?;
                for q in ["p50", "p95", "p99"] {
                    if value.get(q).is_some_and(|v| v.as_num().is_none()) {
                        return Err(format!("histogram {name:?}: non-numeric {q:?}"));
                    }
                }
                let buckets = value
                    .get("buckets")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| format!("histogram {name:?}: missing \"buckets\" array"))?;
                let mut sum = 0.0;
                let mut prev_bound = -1.0;
                for (i, b) in buckets.iter().enumerate() {
                    let pair = b.as_arr().filter(|p| p.len() == 2).ok_or_else(|| {
                        format!("histogram {name:?}: bucket {i} is not a [bound, count] pair")
                    })?;
                    let bound = pair[0]
                        .as_num()
                        .ok_or_else(|| format!("histogram {name:?}: bucket {i} bound"))?;
                    let count = pair[1]
                        .as_num()
                        .ok_or_else(|| format!("histogram {name:?}: bucket {i} count"))?;
                    if bound <= prev_bound {
                        return Err(format!(
                            "histogram {name:?}: bucket bounds must be strictly ascending \
                             (bucket {i}: {bound} after {prev_bound})"
                        ));
                    }
                    if count < 0.0 {
                        return Err(format!("histogram {name:?}: negative count at bucket {i}"));
                    }
                    prev_bound = bound;
                    sum += count;
                }
                if sum != total {
                    return Err(format!(
                        "histogram {name:?}: total {total} != bucket sum {sum}"
                    ));
                }
                stats.histogram_names.insert(name.clone());
            }
            _ => {
                return Err(format!(
                    "metric {name:?}: value must be a number or a histogram object"
                ));
            }
        }
    }
    Ok(stats)
}

/// Validate the metrics snapshot at `path`.
pub fn validate_metrics_file(path: &Path) -> Result<MetricsStats, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    validate_metrics_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_basics() {
        let doc =
            parse_json(r#"{"a": [1, -2.5e3, true, false, null], "b": {"c": "x\n\"Aé"}}"#).unwrap();
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(-2500.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\n\"Aé")
        );
        assert!(parse_json("{\"a\": 1,}").is_err());
        assert!(parse_json("[1, 2] trailing").is_err());
    }

    #[test]
    fn validates_wellformed_trace() {
        let text = r#"{"traceEvents":[
            {"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"cpu"}},
            {"ph":"X","name":"gemm","cat":"work","pid":1,"tid":1,"ts":0,"dur":10,"args":{"m":4}},
            {"ph":"X","name":"idle","cat":"idle","pid":2,"tid":1,"ts":10,"dur":5},
            {"ph":"X","name":"k1","cat":"sim","pid":2,"tid":1,"ts":0,"dur":10},
            {"ph":"C","name":"gemm.calls","pid":1,"tid":0,"ts":10,"args":{"value":3}}
        ]}"#;
        let stats = validate_trace_str(text).unwrap();
        assert_eq!(stats.events, 5);
        assert_eq!(stats.complete_events, 3);
        assert_eq!(stats.idle_events, 1);
        assert_eq!(stats.sim_kernel_events, 1);
        assert_eq!(stats.counter_tracks, 1);
        assert!(stats.counter_names.contains("gemm.calls"));
        assert_eq!(stats.pids.len(), 2);
    }

    #[test]
    fn validates_metrics_snapshot() {
        let good = r#"{
            "gemm.calls": 12,
            "gemm.calls{class=small}": 9,
            "scheduler.event.padded_tokens{class=arrive}":
                {"total": 3, "p50": 128, "p95": 256, "p99": 256,
                 "buckets": [[128, 2], [256, 1]]}
        }"#;
        let stats = validate_metrics_str(good).unwrap();
        assert!(stats.scalar_names.contains("gemm.calls{class=small}"));
        assert!(stats
            .histogram_names
            .contains("scheduler.event.padded_tokens{class=arrive}"));

        let bad_total = r#"{"h": {"total": 5, "buckets": [[1, 1], [2, 1]]}}"#;
        assert!(validate_metrics_str(bad_total).is_err());
        let bad_bounds = r#"{"h": {"total": 2, "buckets": [[2, 1], [1, 1]]}}"#;
        assert!(validate_metrics_str(bad_bounds).is_err());
        let bad_name = r#"{"h{b=2,a=1}": 3}"#;
        assert!(validate_metrics_str(bad_name).is_err());
        assert!(validate_metrics_str("[1]").is_err());
    }

    #[test]
    fn counter_names_must_be_wellformed_labels() {
        let bad = r#"{"traceEvents":[
            {"ph":"C","name":"a{b=2,a=1}","pid":1,"tid":0,"ts":0,"args":{"value":1}}
        ]}"#;
        let err = validate_trace_str(bad).unwrap_err();
        assert!(err.contains("ascending"), "got: {err}");
        let good = r#"{"traceEvents":[
            {"ph":"C","name":"a{a=1,b=2}.p99","pid":1,"tid":0,"ts":0,"args":{"value":1}}
        ]}"#;
        assert!(validate_trace_str(good).is_ok());
    }

    #[test]
    fn rejects_malformed_events() {
        let missing_tid = r#"{"traceEvents":[{"ph":"X","name":"a","ts":0,"dur":1,"pid":1}]}"#;
        assert!(validate_trace_str(missing_tid).is_err());
        let negative_dur =
            r#"{"traceEvents":[{"ph":"X","name":"a","ts":0,"dur":-1,"pid":1,"tid":1}]}"#;
        assert!(validate_trace_str(negative_dur).is_err());
        let bad_counter = r#"{"traceEvents":[{"ph":"C","name":"c","ts":0,"pid":1,"args":{}}]}"#;
        assert!(validate_trace_str(bad_counter).is_err());
        assert!(validate_trace_str("not json").is_err());
    }
}
