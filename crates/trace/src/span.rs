//! Span capture: RAII guards, thread-local buffers, logical parents.
//!
//! Every thread that records a span lazily registers a buffer in a
//! global registry; guards push a completed [`SpanEvent`] into their
//! own thread's buffer on drop, so the hot path never contends on a
//! shared lock (each buffer's mutex is only ever locked by its owner
//! thread until export).
//!
//! Parentage is *logical*, not physical: a span's parent is the
//! innermost open span on the same thread, or — when the thread is a
//! pool worker running a task — the span that was open on the
//! *submitting* thread when the job was enqueued (installed via
//! [`inherit_parent`] by `lorafusion-tensor`'s pool). This is what
//! makes [`Cat::Work`] span trees deterministic at any thread count.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Span category. `Work` spans are part of the deterministic span
/// structure contract; `Task` spans (pool tasks, macro-tiles) depend
/// on the thread count and exist for Perfetto occupancy only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cat {
    Work,
    Task,
}

impl Cat {
    pub fn tag(self) -> &'static str {
        match self {
            Cat::Work => "work",
            Cat::Task => "task",
        }
    }
}

/// Maximum number of `key = value` args a span can carry. Fixed so the
/// guard stays heap-free.
pub const MAX_ARGS: usize = 4;

/// One completed span interval.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    pub name: &'static str,
    pub cat: Cat,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Logical parent span id, or 0 for a root span.
    pub parent: u64,
    pub start_ns: u64,
    pub dur_ns: u64,
    args: [(&'static str, u64); MAX_ARGS],
    nargs: u8,
}

impl SpanEvent {
    pub fn arg_slice(&self) -> &[(&'static str, u64)] {
        &self.args[..self.nargs as usize]
    }
}

/// All events recorded by one thread, with its stable track identity.
#[derive(Debug, Clone)]
pub struct ThreadEvents {
    pub tid: u64,
    pub name: String,
    pub events: Vec<SpanEvent>,
}

struct ThreadBuf {
    tid: u64,
    name: String,
    events: Mutex<Vec<SpanEvent>>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static INHERIT: Cell<u64> = const { Cell::new(0) };
}

fn local_buf() -> Arc<ThreadBuf> {
    LOCAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(buf) = slot.as_ref() {
            return Arc::clone(buf);
        }
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{tid}"));
        let buf = Arc::new(ThreadBuf {
            tid,
            name,
            events: Mutex::new(Vec::new()),
        });
        registry().lock().unwrap().push(Arc::clone(&buf));
        *slot = Some(Arc::clone(&buf));
        buf
    })
}

/// The id of the innermost open span on this thread, falling back to
/// the inherited logical parent (see [`inherit_parent`]); 0 if none.
#[inline]
pub fn current_span_id() -> u64 {
    let top = STACK.with(|s| s.borrow().last().copied());
    match top {
        Some(id) => id,
        None => INHERIT.with(|c| c.get()),
    }
}

/// Restores the previous inherited parent on drop.
pub struct InheritGuard {
    prev: u64,
    _not_send: PhantomData<*const ()>,
}

/// Install `parent` as this thread's logical parent for spans opened
/// while no local span is on the stack. Used by the worker pool to
/// stitch task-side spans under the submitter's span.
pub fn inherit_parent(parent: u64) -> InheritGuard {
    let prev = INHERIT.with(|c| c.replace(parent));
    InheritGuard {
        prev,
        _not_send: PhantomData,
    }
}

impl Drop for InheritGuard {
    fn drop(&mut self) {
        INHERIT.with(|c| c.set(self.prev));
    }
}

struct LiveSpan {
    name: &'static str,
    cat: Cat,
    id: u64,
    parent: u64,
    start_ns: u64,
    args: [(&'static str, u64); MAX_ARGS],
    nargs: u8,
    /// Whether full tracing was on at open time: buffer the event for
    /// export. A guard live only for the flight recorder skips the
    /// span buffers entirely.
    to_trace: bool,
}

/// RAII span guard returned by [`span_guard`] and the [`span!`] /
/// [`task_span!`] macros. Not `Send`: a span belongs to the thread
/// that opened it.
pub struct SpanGuard {
    live: Option<LiveSpan>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Whether this guard is actually recording (tracing enabled at
    /// open time).
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }
}

/// Open a span. Returns an inert guard (no allocation, no thread-local
/// buffer touch) when both tracing and the flight recorder are
/// disabled; a guard opened for the flight recorder alone records into
/// its ring but never the export buffers. `args` beyond [`MAX_ARGS`]
/// are dropped.
#[inline]
pub fn span_guard(name: &'static str, cat: Cat, args: &[(&'static str, u64)]) -> SpanGuard {
    let to_trace = crate::enabled();
    if !to_trace && !crate::flight::enabled() {
        return SpanGuard {
            live: None,
            _not_send: PhantomData,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_span_id();
    STACK.with(|s| s.borrow_mut().push(id));
    let mut packed = [("", 0u64); MAX_ARGS];
    let nargs = args.len().min(MAX_ARGS);
    packed[..nargs].copy_from_slice(&args[..nargs]);
    SpanGuard {
        live: Some(LiveSpan {
            name,
            cat,
            id,
            parent,
            start_ns: crate::now_ns(),
            args: packed,
            nargs: nargs as u8,
            to_trace,
        }),
        _not_send: PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(live) = self.live.take() {
            let dur_ns = crate::now_ns().saturating_sub(live.start_ns);
            STACK.with(|s| {
                s.borrow_mut().pop();
            });
            crate::flight::record_span(live.name, live.start_ns, dur_ns);
            if !live.to_trace {
                return;
            }
            let buf = local_buf();
            buf.events.lock().unwrap().push(SpanEvent {
                name: live.name,
                cat: live.cat,
                id: live.id,
                parent: live.parent,
                start_ns: live.start_ns,
                dur_ns,
                args: live.args,
                nargs: live.nargs,
            });
        }
    }
}

/// Open a [`Cat::Work`] span: `span!("gemm.nn")` or
/// `span!("gemm.nn", m = m, k = k, n = n)` (values cast `as u64`,
/// at most four).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span_guard($name, $crate::span::Cat::Work, &[])
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::span_guard(
            $name,
            $crate::span::Cat::Work,
            &[$((stringify!($key), $value as u64)),+],
        )
    };
}

/// Open a [`Cat::Task`] span (same syntax as [`span!`]).
#[macro_export]
macro_rules! task_span {
    ($name:expr) => {
        $crate::span::span_guard($name, $crate::span::Cat::Task, &[])
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::span_guard(
            $name,
            $crate::span::Cat::Task,
            &[$((stringify!($key), $value as u64)),+],
        )
    };
}

/// Snapshot (clone) every thread's buffered events. Non-destructive,
/// so [`crate::flush`] can be called repeatedly.
pub fn all_thread_events() -> Vec<ThreadEvents> {
    let registry = registry().lock().unwrap();
    registry
        .iter()
        .map(|buf| ThreadEvents {
            tid: buf.tid,
            name: buf.name.clone(),
            events: buf.events.lock().unwrap().clone(),
        })
        .collect()
}

/// Drain every thread's buffered events (destructive; for tests that
/// compare span trees between runs).
pub fn drain_all_events() -> Vec<ThreadEvents> {
    let registry = registry().lock().unwrap();
    registry
        .iter()
        .map(|buf| ThreadEvents {
            tid: buf.tid,
            name: buf.name.clone(),
            events: std::mem::take(&mut *buf.events.lock().unwrap()),
        })
        .collect()
}

/// Collapse [`Cat::Work`] spans into a multiset of `a/b/c` name paths
/// (Work ancestors only — `Task` links are skipped, not broken).
///
/// This is the deterministic shape of an execution: the same program
/// must produce the same map at any thread count. Call it only after
/// the spans of interest have closed; still-open ancestors are not in
/// any buffer yet and truncate the path at that point.
pub fn work_span_paths(threads: &[ThreadEvents]) -> BTreeMap<String, u64> {
    let mut index: BTreeMap<u64, (&'static str, Cat, u64)> = BTreeMap::new();
    for t in threads {
        for e in &t.events {
            index.insert(e.id, (e.name, e.cat, e.parent));
        }
    }
    let mut paths = BTreeMap::new();
    for t in threads {
        for e in &t.events {
            if e.cat != Cat::Work {
                continue;
            }
            let mut names = vec![e.name];
            let mut parent = e.parent;
            while parent != 0 {
                match index.get(&parent) {
                    Some(&(name, cat, grandparent)) => {
                        if cat == Cat::Work {
                            names.push(name);
                        }
                        parent = grandparent;
                    }
                    None => break,
                }
            }
            names.reverse();
            *paths.entry(names.join("/")).or_insert(0) += 1;
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_and_logical_parents() {
        let _serial = crate::test_serial();
        crate::enable_capture();
        drain_all_events();
        {
            let _outer = span!("outer");
            let outer_id = current_span_id();
            assert_ne!(outer_id, 0);
            {
                let _inner = span!("inner", m = 4usize, k = 8usize);
            }
            // Simulate a worker thread inheriting the submitter's span.
            let captured = outer_id;
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _serial_inherit = inherit_parent(captured);
                    let _task = task_span!("pool.task", index = 0usize);
                    let _leaf = span!("leaf");
                });
            });
        }
        crate::disable();
        let threads = drain_all_events();
        let paths = work_span_paths(&threads);
        assert_eq!(paths.get("outer"), Some(&1));
        assert_eq!(paths.get("outer/inner"), Some(&1));
        // The leaf ran on a different thread under a Task span, but its
        // Work path skips the task and lands under "outer".
        assert_eq!(paths.get("outer/leaf"), Some(&1));
        let inner: Vec<_> = threads
            .iter()
            .flat_map(|t| t.events.iter())
            .filter(|e| e.name == "inner")
            .collect();
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].arg_slice(), &[("m", 4), ("k", 8)]);
    }

    #[test]
    fn disabled_guard_is_inert() {
        let _serial = crate::test_serial();
        crate::disable();
        let before = current_span_id();
        let guard = span!("never");
        assert!(!guard.is_live());
        assert_eq!(current_span_id(), before);
    }
}
