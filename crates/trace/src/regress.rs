//! Bench-regression gate: diff current `results/BENCH_*.json` rows
//! against checked-in baselines with per-metric tolerance bands.
//!
//! The bench binaries write row-oriented JSON (`[{field: value, …}]`).
//! This module joins baseline and current rows on their identity
//! fields, classifies every metric field, and produces a
//! machine-readable verdict:
//!
//! * **identity fields** (all string-valued fields plus the shape-like
//!   integers in [`KEY_FIELDS`]) form the row key — a row present in
//!   the baseline must exist in the current results;
//! * **provenance fields** ([`SKIP_FIELDS`]: host core counts, feature
//!   strings, SIMD path) are informational and never compared;
//! * **performance fields** (seconds, `*_ns`/`*_ms`, GFLOP/s, rates,
//!   speedups — see [`classify`]) get a *relative tolerance band*,
//!   direction-aware: only a worsening beyond the band fails, an
//!   improvement always passes;
//! * **everything else is deterministic** (bin counts, rung hit
//!   counts, bitwise flags, digests) and must match exactly — these
//!   fields are covered by the repo's bitwise-determinism contract, so
//!   any drift is a real regression, not noise.
//!
//! CI runs the `bench_regress` binary over the *committed* results and
//! baselines (no re-benchmarking), so the gate is deterministic there;
//! its teeth bite when a PR regenerates `results/` — the diff against
//! `results/baselines/` then shows exactly which metric moved and by
//! how much, in the emitted verdict JSON.

use crate::validate::{parse_json, Value};

/// Integer fields that are part of a row's identity (the sweep axes),
/// not measurements.
pub const KEY_FIELDS: [&str; 4] = ["threads", "queued_jobs", "num_events", "chunk_tokens"];

/// Host-provenance fields: recorded for interpretability, never
/// compared.
pub const SKIP_FIELDS: [&str; 3] = ["host_cores", "detected_features", "simd_path"];

/// How a metric field is compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Bitwise-deterministic: exact equality.
    Exact,
    /// Timing-like: larger is a regression.
    HigherWorse,
    /// Throughput-like: smaller is a regression.
    LowerWorse,
    /// Provenance: not compared.
    Skip,
}

/// Classify a field name. Deterministic fields are the default — a
/// perf metric must *look* like one (`seconds`, `*_ns`, `*_ms`,
/// `gflops*`, `*_per_sec`, `speedup*`).
pub fn classify(field: &str) -> MetricClass {
    if SKIP_FIELDS.contains(&field) {
        return MetricClass::Skip;
    }
    if field.contains("seconds") || field.ends_with("_ns") || field.ends_with("_ms") {
        return MetricClass::HigherWorse;
    }
    if field.contains("gflops") || field.contains("per_sec") || field.contains("speedup") {
        return MetricClass::LowerWorse;
    }
    MetricClass::Exact
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Check {
    pub row_key: String,
    pub field: String,
    pub baseline: f64,
    pub current: f64,
    /// Signed relative change `(current - baseline) / |baseline|`
    /// (0 when the baseline is 0 and they match).
    pub rel_delta: f64,
    pub class: MetricClass,
    pub ok: bool,
}

/// The comparison of one results file.
#[derive(Debug, Clone)]
pub struct FileReport {
    pub name: String,
    pub rows: usize,
    /// Row keys present in the baseline but missing from the current
    /// results — always a failure.
    pub missing_rows: Vec<String>,
    pub checks: Vec<Check>,
}

impl FileReport {
    pub fn ok(&self) -> bool {
        self.missing_rows.is_empty() && self.checks.iter().all(|c| c.ok)
    }

    /// The failing checks, for reporting.
    pub fn failures(&self) -> Vec<&Check> {
        self.checks.iter().filter(|c| !c.ok).collect()
    }
}

fn rows_of(doc: &Value, which: &str) -> Result<Vec<Vec<(String, Value)>>, String> {
    let arr = doc
        .as_arr()
        .ok_or_else(|| format!("{which}: top level must be an array of rows"))?;
    arr.iter()
        .map(|row| match row {
            Value::Obj(fields) => Ok(fields.clone()),
            _ => Err(format!("{which}: row is not an object")),
        })
        .collect()
}

/// A row's identity: every string field plus the [`KEY_FIELDS`]
/// integers, in field order, rendered `k=v` and joined.
fn row_key(fields: &[(String, Value)]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (k, v) in fields {
        if SKIP_FIELDS.contains(&k.as_str()) {
            continue;
        }
        match v {
            Value::Str(s) => parts.push(format!("{k}={s}")),
            Value::Num(n) if KEY_FIELDS.contains(&k.as_str()) => parts.push(format!("{k}={n}")),
            _ => {}
        }
    }
    parts.join(",")
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Num(n) => Some(*n),
        Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        _ => None,
    }
}

/// Compare one results file against its baseline. `rel_tol` is the
/// relative tolerance band for performance fields (e.g. 0.5 allows a
/// 50% slowdown before failing).
pub fn compare_results(
    name: &str,
    baseline_text: &str,
    current_text: &str,
    rel_tol: f64,
) -> Result<FileReport, String> {
    let baseline = rows_of(&parse_json(baseline_text)?, "baseline")?;
    let current = rows_of(&parse_json(current_text)?, "current")?;
    let mut report = FileReport {
        name: name.to_owned(),
        rows: baseline.len(),
        missing_rows: Vec::new(),
        checks: Vec::new(),
    };
    for base_row in &baseline {
        let key = row_key(base_row);
        let Some(cur_row) = current.iter().find(|r| row_key(r) == key) else {
            report.missing_rows.push(key);
            continue;
        };
        for (field, base_val) in base_row {
            let class = classify(field);
            if class == MetricClass::Skip || KEY_FIELDS.contains(&field.as_str()) {
                continue;
            }
            // String identity fields are part of the key; remaining
            // strings (e.g. digests) compare exactly as strings.
            if let Value::Str(base_s) = base_val {
                let cur_s = cur_row
                    .iter()
                    .find(|(k, _)| k == field)
                    .and_then(|(_, v)| v.as_str());
                if class == MetricClass::Exact && cur_s != Some(base_s.as_str()) {
                    report.checks.push(Check {
                        row_key: key.clone(),
                        field: field.clone(),
                        baseline: 0.0,
                        current: 0.0,
                        rel_delta: f64::INFINITY,
                        class,
                        ok: false,
                    });
                }
                continue;
            }
            let Some(base_n) = numeric(base_val) else {
                continue;
            };
            let Some(cur_n) = cur_row
                .iter()
                .find(|(k, _)| k == field)
                .and_then(|(_, v)| numeric(v))
            else {
                report.checks.push(Check {
                    row_key: key.clone(),
                    field: field.clone(),
                    baseline: base_n,
                    current: f64::NAN,
                    rel_delta: f64::INFINITY,
                    class,
                    ok: false,
                });
                continue;
            };
            let rel_delta = if base_n == 0.0 {
                if cur_n == 0.0 {
                    0.0
                } else {
                    f64::INFINITY * (cur_n - base_n).signum()
                }
            } else {
                (cur_n - base_n) / base_n.abs()
            };
            let ok = match class {
                MetricClass::Exact => cur_n == base_n,
                MetricClass::HigherWorse => rel_delta <= rel_tol,
                MetricClass::LowerWorse => rel_delta >= -rel_tol,
                MetricClass::Skip => true,
            };
            report.checks.push(Check {
                row_key: key.clone(),
                field: field.clone(),
                baseline: base_n,
                current: cur_n,
                rel_delta,
                class,
                ok,
            });
        }
    }
    Ok(report)
}

fn json_escape(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Render the machine-readable verdict JSON for a set of file reports:
/// `{"ok": bool, "tolerance": f, "files": [{name, ok, rows,
/// missing_rows, checks_total, failures: [...]}]}`. Failing checks are
/// listed in full; passing ones only counted, so the verdict stays
/// small enough to archive with every CI run.
pub fn render_verdict(reports: &[FileReport], rel_tol: f64) -> String {
    let ok = reports.iter().all(FileReport::ok);
    let mut out = format!(
        "{{\n  \"ok\": {ok},\n  \"tolerance\": {},\n  \"files\": [",
        json_num(rel_tol)
    );
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"name\": \"{}\", \"ok\": {}, \"rows\": {}, \"checks_total\": {},",
            json_escape(&r.name),
            r.ok(),
            r.rows,
            r.checks.len()
        ));
        out.push_str("\n     \"missing_rows\": [");
        for (j, m) in r.missing_rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(m)));
        }
        out.push_str("],\n     \"failures\": [");
        for (j, c) in r.failures().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n      {{\"row\": \"{}\", \"field\": \"{}\", \"baseline\": {}, \
                 \"current\": {}, \"rel_delta\": {}, \"class\": \"{:?}\"}}",
                json_escape(&c.row_key),
                json_escape(&c.field),
                json_num(c.baseline),
                json_num(c.current),
                json_num(c.rel_delta),
                c.class
            ));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"[
        {"layout":"nn","shape":"256x256x256","threads":1,"host_cores":1,
         "simd_path":"avx2+fma","seconds":1.0,"gflops":40.0,"bins":7,
         "bitwise":true,"digest":"abc"}
    ]"#;

    #[test]
    fn identical_results_pass() {
        let r = compare_results("BENCH_x", BASE, BASE, 0.5).unwrap();
        assert!(r.ok(), "{:?}", r.failures());
        assert!(r.checks.len() >= 4, "seconds/gflops/bins/bitwise compared");
        let v = render_verdict(&[r], 0.5);
        assert!(v.contains("\"ok\": true"));
        crate::validate::parse_json(&v).expect("verdict is valid JSON");
    }

    #[test]
    fn perf_bands_are_direction_aware() {
        // 40% slower + 40% lower throughput: inside a 50% band.
        let slower = BASE.replace("\"seconds\":1.0", "\"seconds\":1.4");
        let slower = slower.replace("\"gflops\":40.0", "\"gflops\":24.0");
        let r = compare_results("b", BASE, &slower, 0.5).unwrap();
        assert!(r.ok(), "{:?}", r.failures());
        // 60% slower: outside the band.
        let worse = BASE.replace("\"seconds\":1.0", "\"seconds\":1.6");
        let r = compare_results("b", BASE, &worse, 0.5).unwrap();
        assert!(!r.ok());
        assert_eq!(r.failures()[0].field, "seconds");
        // A large *improvement* always passes.
        let faster = BASE.replace("\"seconds\":1.0", "\"seconds\":0.1");
        assert!(compare_results("b", BASE, &faster, 0.5).unwrap().ok());
    }

    #[test]
    fn deterministic_fields_must_match_exactly() {
        let drift = BASE.replace("\"bins\":7", "\"bins\":8");
        let r = compare_results("b", BASE, &drift, 0.5).unwrap();
        assert!(!r.ok());
        assert_eq!(r.failures()[0].field, "bins");
        let flag = BASE.replace("\"bitwise\":true", "\"bitwise\":false");
        assert!(!compare_results("b", BASE, &flag, 0.5).unwrap().ok());
        let digest = BASE.replace("\"digest\":\"abc\"", "\"digest\":\"abd\"");
        assert!(!compare_results("b", BASE, &digest, 0.5).unwrap().ok());
    }

    #[test]
    fn provenance_is_skipped_and_missing_rows_fail() {
        let other_host = BASE
            .replace("\"host_cores\":1", "\"host_cores\":64")
            .replace("avx2+fma", "scalar");
        assert!(compare_results("b", BASE, &other_host, 0.5).unwrap().ok());
        let renamed = BASE.replace("256x256x256", "512x512x512");
        let r = compare_results("b", BASE, &renamed, 0.5).unwrap();
        assert!(!r.ok());
        assert_eq!(r.missing_rows.len(), 1);
        let v = render_verdict(&[r], 0.5);
        assert!(v.contains("\"ok\": false"));
        crate::validate::parse_json(&v).expect("verdict is valid JSON");
    }

    #[test]
    fn classification_table() {
        assert_eq!(classify("seconds"), MetricClass::HigherWorse);
        assert_eq!(classify("p99_event_ns"), MetricClass::HigherWorse);
        assert_eq!(classify("cold_resolve_ms"), MetricClass::HigherWorse);
        assert_eq!(classify("gflops"), MetricClass::LowerWorse);
        assert_eq!(classify("packings_per_sec"), MetricClass::LowerWorse);
        assert_eq!(classify("speedup_vs_cold"), MetricClass::LowerWorse);
        assert_eq!(classify("online_bins"), MetricClass::Exact);
        assert_eq!(classify("warm_start_prunes"), MetricClass::Exact);
        assert_eq!(classify("simd_path"), MetricClass::Skip);
    }
}
