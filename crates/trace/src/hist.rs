//! Deterministic log-linear histogram buckets and exact quantile
//! extraction.
//!
//! The fleet-telemetry metrics (per-event-class latencies, per-shape
//! token distributions) need quantiles that are *reproducible*: the
//! same multiset of recorded values must yield the same p50/p95/p99 on
//! every machine, at every thread count, and regardless of the order
//! in which per-thread counts are merged. That rules out sampling
//! reservoirs and floating-point accumulation. Instead:
//!
//! * **Fixed bucket boundaries.** One global log-linear bound table
//!   ([`bounds`]) covers the full `u64` range: each power-of-two octave
//!   `[2^e, 2^(e+1))` is split into [`SUBBUCKETS`] linear sub-buckets,
//!   boundaries deduplicated so the table is strictly ascending. The
//!   table is a pure compile-time-deterministic function of nothing —
//!   no configuration, no environment.
//! * **`u64` counts.** Recording is one atomic add into the bucket
//!   found by binary search; there is no floating point anywhere on
//!   the write path.
//! * **Merge contract.** Two histograms over the same bound table are
//!   merged by elementwise addition of bucket counts. Addition of
//!   `u64`s is commutative and associative, so any merge order (and
//!   any interleaving of concurrent writers) yields identical buckets
//!   — and therefore identical quantiles. [`merge_counts`] implements
//!   (and tests assert) exactly this.
//! * **Exact quantile rule.** [`quantile_from_buckets`] defines
//!   `quantile(q)` as the inclusive upper bound of the first bucket
//!   whose cumulative count reaches `ceil(q · total)` (clamped to
//!   `[1, total]`); an empty histogram reports 0. The result is a
//!   deterministic function of the bucket counts alone — "exact" in
//!   the sense that there is no estimation step whose answer could
//!   vary between runs; the resolution is the bucket width (≤ 25%
//!   relative at [`SUBBUCKETS`] = 4).

use std::sync::OnceLock;

/// Linear sub-buckets per power-of-two octave. 4 bounds relative
/// quantile error by 1/4 of the octave width (≤ 25%).
pub const SUBBUCKETS: u64 = 4;

/// The global log-linear bucket upper bounds (inclusive), strictly
/// ascending, built once and leaked. Values above the last bound land
/// in the registry's implicit overflow bucket (reported with bound
/// `u64::MAX`).
pub fn bounds() -> &'static [u64] {
    static BOUNDS: OnceLock<&'static [u64]> = OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut out: Vec<u64> = Vec::new();
        for e in 0..64u32 {
            for s in 1..=SUBBUCKETS {
                let b = ((1u128 << e) * (SUBBUCKETS + s) as u128) / SUBBUCKETS as u128;
                if b > u64::MAX as u128 {
                    continue;
                }
                let b = b as u64;
                if out.last() != Some(&b) {
                    out.push(b);
                }
            }
        }
        Box::leak(out.into_boxed_slice())
    })
}

/// Index of the bucket a value lands in: the first bound `>= value`,
/// or `bounds().len()` (the overflow bucket) when none is.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    bounds().partition_point(|&b| b < value)
}

/// Exact deterministic quantile over `(upper_bound, count)` buckets:
/// the upper bound of the first bucket whose cumulative count reaches
/// `ceil(q · total)`, clamped to `[1, total]`. Empty histograms report
/// 0. `q` is clamped to `[0, 1]`.
pub fn quantile_from_buckets(buckets: &[(u64, u64)], q: f64) -> u64 {
    let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for &(bound, count) in buckets {
        cum += count;
        if cum >= rank {
            return bound;
        }
    }
    buckets.last().map(|&(b, _)| b).unwrap_or(0)
}

/// Merge two bucket vectors over the same bound table by elementwise
/// count addition — the documented (commutative, associative,
/// order-invariant) merge operation. Panics if the bound tables
/// disagree: histograms with different boundaries are different
/// metrics and must never be merged.
pub fn merge_counts(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    assert_eq!(a.len(), b.len(), "histogram merge: bucket count mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&(ba, ca), &(bb, cb))| {
            assert_eq!(ba, bb, "histogram merge: bound mismatch");
            (ba, ca + cb)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_ascending_and_cover_small_values() {
        let b = bounds();
        assert!(b.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
        assert_eq!(b[0], 1);
        // Small integers get their own bucket (width-1 sub-buckets).
        assert!(b.contains(&2) && b.contains(&3) && b.contains(&4));
        // Log-linear shape: 4 sub-buckets inside [1024, 2048).
        assert!(b.contains(&1280) && b.contains(&1536) && b.contains(&1792) && b.contains(&2048));
        assert!(b.len() < 260, "bound table stays compact: {}", b.len());
    }

    #[test]
    fn bucket_index_matches_linear_scan() {
        let b = bounds();
        for v in [0u64, 1, 2, 3, 5, 100, 1023, 1024, 1025, 1 << 40, u64::MAX] {
            let want = b.iter().position(|&x| v <= x).unwrap_or(b.len());
            assert_eq!(bucket_index(v), want, "value {v}");
        }
    }

    #[test]
    fn quantile_rule_is_exact_on_known_distributions() {
        // 100 values in the bucket bounded by 8, then 1 outlier at the
        // bucket bounded by 1024.
        let mut buckets: Vec<(u64, u64)> = bounds().iter().map(|&b| (b, 0)).collect();
        buckets[bucket_index(8)].1 = 100;
        buckets[bucket_index(1024)].1 = 1;
        assert_eq!(quantile_from_buckets(&buckets, 0.50), 8);
        assert_eq!(quantile_from_buckets(&buckets, 0.99), 8);
        assert_eq!(quantile_from_buckets(&buckets, 1.0), 1024);
        assert_eq!(quantile_from_buckets(&[], 0.5), 0);
        assert_eq!(quantile_from_buckets(&[(4, 0)], 0.5), 0, "empty total");
    }

    #[test]
    fn merge_is_order_invariant() {
        let mk = |vals: &[u64]| {
            let mut buckets: Vec<(u64, u64)> = bounds().iter().map(|&b| (b, 0)).collect();
            buckets.push((u64::MAX, 0));
            for &v in vals {
                buckets[bucket_index(v)].1 += 1;
            }
            buckets
        };
        let a = mk(&[1, 5, 9000]);
        let b = mk(&[2, 5, 1 << 50]);
        let c = mk(&[700]);
        let abc = merge_counts(&merge_counts(&a, &b), &c);
        let cba = merge_counts(&c, &merge_counts(&b, &a));
        assert_eq!(abc, cba);
        assert_eq!(
            quantile_from_buckets(&abc, 0.5),
            quantile_from_buckets(&cba, 0.5)
        );
    }
}
