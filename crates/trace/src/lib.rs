//! `lorafusion-trace`: spans, metrics, and Chrome/Perfetto export.
//!
//! The crate has three layers, all dependency-free:
//!
//! 1. **Spans** ([`span!`] / [`task_span!`]): RAII guards that record a
//!    named interval into a thread-local buffer. When tracing is
//!    disabled the guard is a no-op behind a single relaxed atomic
//!    load — no heap allocation, no thread-local buffer touch — so the
//!    hot kernel paths stay zero-alloc (asserted by
//!    `crates/kernels/tests/zero_alloc.rs`).
//! 2. **Metrics** ([`metrics`]): a global registry of named counters,
//!    gauges, and fixed-bucket histograms backed by leaked
//!    `&'static AtomicU64` cells. Always on (an atomic add is cheap),
//!    snapshotted on demand, and sampled into Perfetto counter tracks.
//! 3. **Exporters** ([`chrome`], [`sim`], [`validate`]): render real
//!    CPU execution (one track per worker thread) and the simulated
//!    GPU timelines (one track per stream) into a single Chrome
//!    trace-event JSON file, plus a minimal parser/validator for the
//!    emitted schema so CI can gate on well-formed output.
//!
//! # Determinism contract
//!
//! Trace *output* carries wall-clock timestamps and is therefore
//! excluded from the repo's bitwise-determinism contract. Span
//! *structure* is split in two:
//!
//! - [`span::Cat::Work`] spans are semantic (a GEMM call, an executor
//!   step, a pipeline simulation). Their names, nesting, and counts
//!   must be identical at any thread count; `pool::run` propagates the
//!   submitter's span as the *logical* parent of every task so the
//!   tree reflects the call structure, not thread assignment.
//! - [`span::Cat::Task`] spans (pool tasks, macro-tiles) depend on the
//!   thread count by construction and are excluded from the contract;
//!   they exist so Perfetto shows real per-thread occupancy.
//!
//! # Enabling
//!
//! Set `LORAFUSION_TRACE=/path/to/trace.json` before the process
//! starts, or pass `--trace <path>` to any bench/fig binary. Tests use
//! [`enable_capture`] / [`disable`] to capture spans in-process
//! without touching the environment.

pub mod chrome;
pub mod flight;
pub mod hist;
pub mod label;
pub mod metrics;
pub mod regress;
pub mod sim;
pub mod span;
pub mod validate;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static INIT: Once = Once::new();
static PATH: Mutex<Option<PathBuf>> = Mutex::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Whether span capture is currently enabled.
///
/// First call runs one-time env initialisation (`LORAFUSION_TRACE`);
/// after that this is a single relaxed atomic load, cheap enough for
/// the innermost kernel loops.
#[inline]
pub fn enabled() -> bool {
    INIT.call_once(init_from_env);
    ENABLED.load(Ordering::Relaxed)
}

fn init_from_env() {
    EPOCH.get_or_init(Instant::now);
    if let Ok(path) = std::env::var("LORAFUSION_TRACE") {
        if !path.is_empty() {
            *PATH.lock().unwrap() = Some(PathBuf::from(path));
            ENABLED.store(true, Ordering::Relaxed);
        }
    }
    if let Ok(path) = std::env::var("LORAFUSION_FLIGHT_DUMP") {
        if !path.is_empty() {
            flight::dump_on_panic(Path::new(&path));
        }
    }
    if std::env::var("LORAFUSION_FLIGHT").is_ok_and(|v| v == "1") {
        flight::enable();
    }
}

/// Enable span capture without an output file (tests, programmatic use).
pub fn enable_capture() {
    INIT.call_once(init_from_env);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Enable span capture and set the trace output path ( `--trace` flag).
pub fn enable_to_path(path: &Path) {
    INIT.call_once(init_from_env);
    *PATH.lock().unwrap() = Some(path.to_path_buf());
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disable span capture. Already-buffered events are kept until
/// [`span::drain_all_events`] or process exit.
pub fn disable() {
    INIT.call_once(init_from_env);
    ENABLED.store(false, Ordering::Relaxed);
}

/// The configured trace output path, if any.
pub fn trace_path() -> Option<PathBuf> {
    INIT.call_once(init_from_env);
    PATH.lock().unwrap().clone()
}

/// Nanoseconds since the process-wide trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Microseconds (Chrome trace-event unit) since the trace epoch.
#[inline]
pub fn now_us() -> f64 {
    now_ns() as f64 / 1e3
}

/// Flush buffered spans, sim events, and counter samples to the
/// configured trace path. No-op when no path is configured. Safe to
/// call repeatedly: the file is rewritten whole each time.
pub fn flush() -> std::io::Result<()> {
    if let Some(path) = trace_path() {
        chrome::write_trace(&path)?;
    }
    Ok(())
}

/// Serialises unit tests that flip the global enable flag or drain the
/// global span buffers; `cargo test` runs tests on threads in one
/// process.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_without_env() {
        let _serial = test_serial();
        // The test harness does not set LORAFUSION_TRACE; after
        // explicit disable() the flag must read false and span guards
        // must be inert.
        disable();
        assert!(!enabled());
        let guard = span::span_guard("noop", span::Cat::Work, &[]);
        assert!(!guard.is_live());
        drop(guard);
    }

    #[test]
    fn enable_capture_round_trip() {
        let _serial = test_serial();
        enable_capture();
        assert!(enabled());
        disable();
        assert!(!enabled());
    }

    #[test]
    fn epoch_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
        assert!(now_us() >= 0.0);
    }
}
