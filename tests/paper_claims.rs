//! Integration tests pinning the paper's headline claims (C1/C2 of the
//! artifact appendix) to the reproduction, in *shape*: who wins, by
//! roughly what factor, and where the crossovers fall.

use lorafusion_bench::Workload;
use lorafusion_dist::baselines::{evaluate_system, SystemKind};
use lorafusion_dist::cluster::ClusterSpec;
use lorafusion_dist::model_config::ModelPreset;
use lorafusion_gpu::{CostModel, DeviceKind, KernelProfile};
use lorafusion_kernels::{fused, reference, Shape, TrafficModel};

/// C2 (Fig. 17): fused kernels are 1.1-1.5x faster, average near 1.27x.
#[test]
fn c2_fused_kernel_speedup_band() {
    let dev = DeviceKind::H100Sxm.spec();
    let cost = CostModel::default();
    let t = TrafficModel::for_device(&dev);
    let mut speedups = Vec::new();
    for &m in &[1024usize, 4096, 8192, 16384] {
        let shape = Shape::new(m, 4096, 4096, 16);
        let torch = cost.sequence_seconds(&dev, &reference::forward_profiles(shape, &t))
            + cost.sequence_seconds(&dev, &reference::backward_profiles(shape, &t));
        let fused_t = cost.sequence_seconds(&dev, &fused::forward_profiles(shape, &t))
            + cost.sequence_seconds(&dev, &fused::backward_profiles(shape, &t));
        speedups.push(torch / fused_t);
    }
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!((1.15..1.55).contains(&mean), "mean kernel speedup {mean}");
    for s in &speedups {
        assert!((1.05..1.6).contains(s), "pointwise speedup {s}");
    }
}

/// Section 3.1: DRAM traffic inflation of Torch LoRA is ~2.6x; Fig. 19:
/// fusion removes a large fraction of it.
#[test]
fn traffic_claims_hold() {
    let dev = DeviceKind::H100Sxm.spec();
    let t = TrafficModel::for_device(&dev);
    let shape = Shape::new(8192, 4096, 4096, 16);
    let sum = |ks: Vec<KernelProfile>| ks.iter().map(KernelProfile::bytes_total).sum::<u64>();
    let torch =
        sum(reference::forward_profiles(shape, &t)) + sum(reference::backward_profiles(shape, &t));
    let frozen = sum(lorafusion_kernels::frozen::forward_profiles(shape, &t))
        + sum(lorafusion_kernels::frozen::backward_profiles(shape, &t));
    let fused_b =
        sum(fused::forward_profiles(shape, &t)) + sum(fused::backward_profiles(shape, &t));

    let inflation = torch as f64 / frozen as f64;
    assert!(
        (2.3..3.0).contains(&inflation),
        "traffic inflation {inflation} (paper 2.64)"
    );
    let reduction = 1.0 - fused_b as f64 / torch as f64;
    assert!(
        (0.30..0.55).contains(&reduction),
        "traffic reduction {reduction} (paper 0.34-0.37)"
    );
}

/// C1 (Fig. 14): LoRAFusion beats Megatron-LM and mLoRA end to end on the
/// distributed setting, within the paper's band.
#[test]
fn c1_end_to_end_speedup_band() {
    let cluster = ClusterSpec::h100(4);
    let jobs = Workload::Mixed.jobs(128, 32, 77);
    let get = |kind| {
        evaluate_system(kind, ModelPreset::Llama70b, &cluster, &jobs, 16, 16384).tokens_per_second
    };
    let lf = get(SystemKind::LoraFusion);
    let ml = get(SystemKind::MLora);
    let mp = get(SystemKind::MegatronPp);
    let mf = get(SystemKind::MegatronFsdp);
    let vs_megatron = lf / mp.max(mf);
    let vs_mlora = lf / ml;
    assert!(
        (1.1..2.2).contains(&vs_megatron),
        "vs Megatron {vs_megatron} (paper <=1.96)"
    );
    assert!(
        (1.05..1.6).contains(&vs_mlora),
        "vs mLoRA {vs_mlora} (paper <=1.46)"
    );
}

/// Fig. 20's ordering: Megatron bubbles > mLoRA bubbles > LoRAFusion
/// bubbles, and LoRAFusion's shrink as adapters are added.
#[test]
fn bubble_ratio_ordering_and_trend() {
    let cluster = ClusterSpec::h100(4);
    let model = ModelPreset::Llama70b;
    let bubble = |kind, n_adapters: usize| {
        let jobs: Vec<_> = Workload::Mixed
            .jobs(128, 32, 55)
            .into_iter()
            .take(n_adapters)
            .collect();
        evaluate_system(kind, model, &cluster, &jobs, 16, 16384)
            .bubble_ratio
            .expect("pipelined run")
    };
    let megatron = bubble(SystemKind::MegatronPp, 1);
    let mlora = bubble(SystemKind::MLora, 4);
    let lf1 = bubble(SystemKind::LoraFusion, 1);
    let lf4 = bubble(SystemKind::LoraFusion, 4);
    assert!(megatron > mlora, "megatron {megatron} vs mlora {mlora}");
    assert!(mlora > lf4, "mlora {mlora} vs lorafusion-4 {lf4}");
    assert!(
        lf1 > lf4,
        "one adapter {lf1} must bubble more than four {lf4}"
    );
    assert!(lf4 < 0.20, "four-adapter bubble {lf4} (paper 11.09%)");
    assert!(megatron > 0.30, "megatron bubble {megatron} (paper 48.79%)");
}
