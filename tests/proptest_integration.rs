//! Property-based suite: compile-gated because `proptest` is not
//! vendored in the offline build. Enable with `--features proptest` after
//! re-adding the `proptest` dev-dependency in a networked environment.
//! Deterministic sweep fallbacks live in the regular test suites.
#![cfg(feature = "proptest")]

//! Workspace-level property tests: random multi-job workloads flow through
//! scheduler → pipeline simulation → throughput without violating any
//! cross-crate invariant.

use lorafusion_data::Sample;
use lorafusion_dist::baselines::{
    evaluate_custom, Batching, CustomConfig, PipelineMode, SystemKind,
};
use lorafusion_dist::cluster::ClusterSpec;
use lorafusion_dist::layer_cost::KernelStrategy;
use lorafusion_dist::model_config::ModelPreset;
use lorafusion_sched::AdapterJob;
use proptest::prelude::*;

fn arb_jobs() -> impl Strategy<Value = Vec<AdapterJob>> {
    prop::collection::vec(prop::collection::vec(32usize..4000, 4..20), 1..4).prop_map(|jobs| {
        jobs.into_iter()
            .enumerate()
            .map(|(adapter, lens)| AdapterJob {
                adapter,
                samples: lens
                    .into_iter()
                    .enumerate()
                    .map(|(i, len)| Sample { id: i as u64, len })
                    .collect(),
                global_batch_size: 4,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full LoRAFusion evaluation path terminates with a physically
    /// sane result on arbitrary workloads: positive throughput, bubble
    /// ratio in [0, 1), and exact token accounting.
    #[test]
    fn lorafusion_evaluation_is_sane(jobs in arb_jobs()) {
        let cfg = CustomConfig {
            model: ModelPreset::Llama8b,
            cluster: ClusterSpec::h100(2),
            rank: 16,
            batching: Batching::Scheduled { capacity: 8192, use_milp: false, use_merge: true },
            kernel: KernelStrategy::FusedMultiLora { adapters: 1 },
            pipeline: PipelineMode::Continuous,
            sequential_jobs: false,
        };
        let r = evaluate_custom(&cfg, &jobs);
        prop_assert!(!r.oom);
        let expected: usize = jobs.iter().flat_map(|j| j.samples.iter().map(|s| s.len)).sum();
        prop_assert_eq!(r.tokens, expected);
        prop_assert!(r.tokens_per_second > 0.0);
        if let Some(b) = r.bubble_ratio {
            prop_assert!((0.0..1.0).contains(&b), "bubble {b}");
        }
    }

    /// The merge pass is a heuristic whose throughput effect can go either
    /// way on adversarial streams (it trades microbatch count against
    /// pipeline fill), but it must never lose tokens or break execution.
    #[test]
    fn merge_is_lossless(jobs in arb_jobs()) {
        let base = CustomConfig {
            model: ModelPreset::Llama8b,
            cluster: ClusterSpec::h100(2),
            rank: 16,
            batching: Batching::Scheduled { capacity: 8192, use_milp: false, use_merge: false },
            kernel: KernelStrategy::FusedMultiLora { adapters: 1 },
            pipeline: PipelineMode::Continuous,
            sequential_jobs: false,
        };
        let mut merged = base.clone();
        merged.batching =
            Batching::Scheduled { capacity: 8192, use_milp: false, use_merge: true };
        let a = evaluate_custom(&base, &jobs);
        let b = evaluate_custom(&merged, &jobs);
        prop_assert_eq!(a.tokens, b.tokens);
        prop_assert!(a.tokens_per_second > 0.0 && b.tokens_per_second > 0.0);
    }

    /// The four systems all process the same token volume (no silent
    /// truncation anywhere in any batching path).
    #[test]
    fn all_systems_account_identical_tokens(jobs in arb_jobs()) {
        let cluster = ClusterSpec::h100(2);
        let expected: usize = jobs.iter().flat_map(|j| j.samples.iter().map(|s| s.len)).sum();
        for kind in SystemKind::ALL {
            let r = lorafusion_dist::baselines::evaluate_system(
                kind,
                ModelPreset::Llama8b,
                &cluster,
                &jobs,
                16,
                8192,
            );
            if !r.oom {
                prop_assert_eq!(r.tokens, expected, "{} lost tokens", kind.name());
            }
        }
    }
}
