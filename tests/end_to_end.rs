//! Cross-crate integration tests: the full stack from jobs to plan to
//! execution, exercised together.

use lorafusion::prelude::*;
use lorafusion_dist::baselines::{evaluate_system, SystemKind};
use lorafusion_sched::{verify_bubble_lemma, SchedulerConfig};

fn jobs() -> Vec<FinetuneJob> {
    vec![
        FinetuneJob::synthetic("a", DatasetPreset::XSum, 64, 16, 1),
        FinetuneJob::synthetic("b", DatasetPreset::CnnDailyMail, 64, 16, 2),
        FinetuneJob::synthetic("c", DatasetPreset::WikiSum, 64, 16, 3),
        FinetuneJob::synthetic("d", DatasetPreset::Mixed, 64, 16, 4),
    ]
}

#[test]
fn plan_schedule_and_simulation_agree_on_token_totals() {
    let planner = Planner::new(ModelPreset::Llama8b, ClusterSpec::h100(1));
    let plan = planner.plan(&jobs()).unwrap();
    let expected_tokens: usize = jobs().iter().map(FinetuneJob::total_tokens).sum();
    assert_eq!(plan.schedule.total_tokens(), expected_tokens);
    assert!(plan.predicted_tokens_per_second > 0.0);
}

#[test]
fn planner_schedule_is_dependency_safe_for_the_target_pipeline() {
    let planner = Planner::new(ModelPreset::Llama70b, ClusterSpec::h100(4));
    let plan = planner.plan(&jobs()).unwrap();
    assert!(verify_bubble_lemma(&plan.schedule.microbatches, 4).is_empty());
}

#[test]
fn lorafusion_wins_end_to_end_on_the_multi_gpu_setting() {
    let cluster = ClusterSpec::h100(4);
    let ajobs = lorafusion::job::to_adapter_jobs(&jobs());
    let lf = evaluate_system(
        SystemKind::LoraFusion,
        ModelPreset::Llama70b,
        &cluster,
        &ajobs,
        16,
        16384,
    );
    let ml = evaluate_system(
        SystemKind::MLora,
        ModelPreset::Llama70b,
        &cluster,
        &ajobs,
        16,
        16384,
    );
    let mp = evaluate_system(
        SystemKind::MegatronPp,
        ModelPreset::Llama70b,
        &cluster,
        &ajobs,
        16,
        16384,
    );
    assert!(!lf.oom);
    assert!(lf.tokens_per_second > ml.tokens_per_second);
    assert!(lf.tokens_per_second > mp.tokens_per_second);
}

#[test]
fn scheduler_capacity_errors_propagate_to_the_planner_boundary() {
    // A sample longer than every feasible capacity must be rejected by the
    // scheduler, not silently truncated.
    let mut big = jobs();
    big[0].dataset.samples[0].len = 1 << 22;
    let cfg = SchedulerConfig {
        capacity: 16384,
        ..SchedulerConfig::default()
    };
    let ajobs = lorafusion::job::to_adapter_jobs(&big);
    let err = lorafusion_sched::schedule_jobs(&ajobs, &cfg).unwrap_err();
    assert!(matches!(
        err,
        lorafusion_sched::SchedulerError::SampleExceedsCapacity { .. }
    ));
}

#[test]
fn trainer_consumes_a_real_schedule() {
    // Execute a scheduler-produced microbatch stream through the real
    // multi-adapter trainer: sample lengths become token segments.
    let jobs = vec![
        FinetuneJob::synthetic("a", DatasetPreset::XSum, 12, 6, 5),
        FinetuneJob::synthetic("b", DatasetPreset::XSum, 12, 6, 6),
    ];
    let ajobs = lorafusion::job::to_adapter_jobs(&jobs);
    let cfg = SchedulerConfig {
        capacity: 4096,
        pipeline_stages: 1,
        ..SchedulerConfig::default()
    };
    let schedule = lorafusion_sched::schedule_jobs(&ajobs, &cfg).unwrap();

    let config = TrainerConfig::small(2, ExecutorKind::FusedMulti);
    let mut trainer = MultiAdapterTrainer::new(&config);
    let before: f64 = (0..2).map(|a| trainer.probe_loss(a, 32, 77)).sum();
    for _epoch in 0..12 {
        for mb in schedule.microbatches.iter().filter(|m| !m.noop) {
            // Map every 64 dataset tokens to one trainer token, at least 1.
            let segments: Vec<(usize, usize)> = mb
                .entries
                .iter()
                .map(|e| (e.adapter, (e.sample.len / 64).max(1)))
                .collect();
            let total: usize = segments.iter().map(|&(_, l)| l).sum();
            let x = trainer.sample_input(total);
            trainer.step_microbatch(&x, &segments).unwrap();
        }
        trainer.apply_adapter_step(0);
        trainer.apply_adapter_step(1);
    }
    let after: f64 = (0..2).map(|a| trainer.probe_loss(a, 32, 77)).sum();
    assert!(after < before, "loss must decrease: {before} -> {after}");
}
