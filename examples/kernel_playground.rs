//! Kernel playground: run the LoRA executors by hand and inspect both
//! their numerics and their modeled GPU behaviour.
//!
//! ```sh
//! cargo run --release --example kernel_playground
//! ```

use lorafusion_gpu::{CostModel, DeviceKind, TrafficLedger};
use lorafusion_kernels::{fused, reference, LoraConfig, LoraLayer, Shape, TrafficModel};
use lorafusion_tensor::ops::max_abs_diff;
use lorafusion_tensor::{Matrix, Pcg32};

fn main() {
    // --- Functional: prove the fusion is lossless on real numbers. ---
    let mut rng = Pcg32::seeded(2024);
    let cfg = LoraConfig {
        rank: 8,
        alpha: 2.0,
        dropout: 0.1,
        seed: 99,
    };
    let layer = LoraLayer::init_nonzero(64, 48, cfg, &mut rng);
    let x = Matrix::random_uniform(32, 64, 1.0, &mut rng);
    let dy = Matrix::random_uniform(32, 48, 1.0, &mut rng);
    let traffic = TrafficModel::for_device(&DeviceKind::H100Sxm.spec());

    let r_fwd = reference::forward(&layer, &x, 0, &traffic).unwrap();
    let f_fwd = fused::forward(&layer, &x, 0, &traffic).unwrap();
    println!(
        "forward  |fused - reference|_inf = {:.2e}",
        max_abs_diff(&f_fwd.y, &r_fwd.y).unwrap()
    );

    let r_bwd = reference::backward(&layer, &r_fwd.saved, &dy, &traffic).unwrap();
    let f_bwd = fused::backward(&layer, &f_fwd.saved, &dy, &traffic).unwrap();
    println!(
        "backward |dX|: {:.2e}  |dA|: {:.2e}  |dB|: {:.2e}",
        max_abs_diff(&f_bwd.dx, &r_bwd.dx).unwrap(),
        max_abs_diff(&f_bwd.grads.da, &r_bwd.grads.da).unwrap(),
        max_abs_diff(&f_bwd.grads.db, &r_bwd.grads.db).unwrap(),
    );
    println!(
        "dropped activations bit-identical: {}",
        f_fwd.saved.x_hat == r_fwd.saved.x_hat
    );

    // --- Modeled: what the same module costs on an H100. ---
    let dev = DeviceKind::H100Sxm.spec();
    let cost = CostModel::default();
    let shape = Shape::new(8192, 4096, 4096, 16);
    println!("\nmodeled H100 execution (m=8192, k=n=4096, r=16):");
    for (name, fwd, bwd) in [
        (
            "Torch LoRA",
            reference::forward_profiles(shape, &traffic),
            reference::backward_profiles(shape, &traffic),
        ),
        (
            "FusedLoRA",
            fused::forward_profiles(shape, &traffic),
            fused::backward_profiles(shape, &traffic),
        ),
    ] {
        let mut ledger = TrafficLedger::new();
        ledger.record_all(&fwd);
        ledger.record_all(&bwd);
        let t_fwd = cost.sequence_seconds(&dev, &fwd);
        let t_bwd = cost.sequence_seconds(&dev, &bwd);
        println!(
            "  {:<10} fwd {:>7.3} ms  bwd {:>7.3} ms  kernels {:>2}  DRAM {:>6.2} GB",
            name,
            t_fwd * 1e3,
            t_bwd * 1e3,
            fwd.len() + bwd.len(),
            ledger.total() as f64 / 1e9,
        );
        println!("  per-kernel traffic:");
        for (kernel, read, write) in ledger.iter() {
            println!(
                "    {:<34} read {:>7.1} MB  write {:>7.1} MB",
                kernel,
                read as f64 / 1e6,
                write as f64 / 1e6
            );
        }
    }

    // --- Roofline: why the LoRA GEMMs are memory-bound (Eq. 2). ---
    let intensity = lorafusion_gpu::lora_down_projection_intensity(8192, 4096, 16);
    println!(
        "\nEq. 2: down-projection intensity {:.1} FLOP/B vs machine balance {:.0} FLOP/B",
        intensity,
        dev.machine_balance()
    );

    // Flush the Perfetto trace when LORAFUSION_TRACE=<path> is set.
    if let Some(path) = lorafusion_trace::trace_path() {
        lorafusion_trace::metrics::sample_counters();
        match lorafusion_trace::flush() {
            Ok(()) => println!("trace written to {}", path.display()),
            Err(e) => eprintln!("trace flush failed: {e}"),
        }
    }
}
