//! Quickstart: plan and "run" a multi-LoRA fine-tuning session.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Declares four fine-tuning jobs sharing a LLaMa-3.1-8B base model, lets
//! the planner pick a token capacity and build the schedule, then executes
//! a few real-arithmetic training steps through the FusedMultiLoRA
//! executor to show losses falling.

use lorafusion::prelude::*;

fn main() {
    // 1. Describe the jobs: four adapters, different datasets/seeds.
    let jobs = vec![
        FinetuneJob::synthetic("support-bot", DatasetPreset::XSum, 64, 16, 1),
        FinetuneJob::synthetic("news-digest", DatasetPreset::CnnDailyMail, 64, 16, 2),
        FinetuneJob::synthetic("wiki-summaries", DatasetPreset::WikiSum, 64, 16, 3),
        FinetuneJob::synthetic("catch-all", DatasetPreset::Mixed, 64, 16, 4),
    ];
    for job in &jobs {
        println!(
            "job {:<16} {:>6} samples, {:>8} tokens, rank {}",
            job.name,
            job.dataset.len(),
            job.total_tokens(),
            job.lora.rank
        );
    }

    // 2. Plan: capacity proposal, adapter grouping, schedule, simulation.
    let planner = Planner::new(ModelPreset::Llama8b, ClusterSpec::h100(1));
    let plan = planner.plan(&jobs).expect("plannable workload");
    println!("\nplanner chose capacity {} tokens", plan.capacity);
    println!("capacity sweep:");
    for (cap, tput) in &plan.candidates {
        println!(
            "  {:>6} tokens -> {:>10.0} tokens/sec (simulated)",
            cap, tput
        );
    }
    println!(
        "schedule: {} microbatches ({} no-ops), {} groups, MILP selected {}/{}",
        plan.schedule.microbatches.len(),
        plan.schedule.microbatches.iter().filter(|m| m.noop).count(),
        plan.schedule.groups.len(),
        plan.schedule.stats.milp_selected,
        plan.schedule.stats.packings,
    );

    // 3. Execute a laptop-scale training loop with real numerics.
    let config = TrainerConfig::small(jobs.len(), ExecutorKind::FusedMulti);
    let mut trainer = MultiAdapterTrainer::new(&config);
    println!("\ntraining (FusedMultiLoRA executor, 4 adapters jointly):");
    for step in 0..60 {
        let x = trainer.sample_input(32);
        let losses = trainer
            .step_microbatch(&x, &[(0, 8), (1, 8), (2, 8), (3, 8)])
            .expect("training step");
        for a in 0..jobs.len() {
            trainer.apply_adapter_step(a);
        }
        if step % 20 == 0 {
            let line: Vec<String> = losses
                .iter()
                .map(|(a, l)| format!("job{a}={l:.4}"))
                .collect();
            println!("  step {:>3}: {}", step, line.join("  "));
        }
    }
    let final_losses: Vec<String> = (0..jobs.len())
        .map(|a| format!("job{a}={:.4}", trainer.probe_loss(a, 64, 7)))
        .collect();
    println!("  final : {}", final_losses.join("  "));

    // Flush the Perfetto trace when LORAFUSION_TRACE=<path> is set.
    if let Some(path) = lorafusion_trace::trace_path() {
        lorafusion_trace::metrics::sample_counters();
        match lorafusion_trace::flush() {
            Ok(()) => println!("trace written to {}", path.display()),
            Err(e) => eprintln!("trace flush failed: {e}"),
        }
    }
}
