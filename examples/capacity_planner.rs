//! Capacity planner: the parallelism-profiler workflow of Fig. 8, exposed
//! as a what-if tool across models and clusters.
//!
//! ```sh
//! cargo run --release --example capacity_planner
//! ```

use lorafusion::prelude::*;
use lorafusion_dist::memory::MemoryPlan;

fn main() {
    let jobs = vec![
        FinetuneJob::synthetic("a", DatasetPreset::XSum, 64, 16, 11),
        FinetuneJob::synthetic("b", DatasetPreset::CnnDailyMail, 64, 16, 12),
        FinetuneJob::synthetic("c", DatasetPreset::WikiSum, 64, 16, 13),
        FinetuneJob::synthetic("d", DatasetPreset::Mixed, 64, 16, 14),
    ];

    let configurations = [
        (ModelPreset::Llama8b, ClusterSpec::h100(1)),
        (ModelPreset::Qwen32b, ClusterSpec::h100(2)),
        (ModelPreset::Llama70b, ClusterSpec::h100(4)),
        (ModelPreset::Llama8b, ClusterSpec::l40s(1)),
        (ModelPreset::Qwen32b, ClusterSpec::l40s(4)),
    ];

    for (model, cluster) in configurations {
        let cfg = model.config();
        let plan = MemoryPlan::for_gpu(&cfg, jobs.len(), 16, cluster.gpus, 1);
        let device = cluster.device.spec();
        println!(
            "\n{} on {} x {} ({} GiB each)",
            cfg.name, cluster.gpus, device.name, device.memory_gib
        );
        println!(
            "  frozen {:.1} GB + adapters {:.2} GB per GPU; {:.0} KB activations per token",
            plan.frozen_bytes as f64 / 1e9,
            plan.adapter_bytes as f64 / 1e9,
            plan.activation_bytes_per_token as f64 / 1e3,
        );
        let max_tokens = plan.max_tokens_in_flight(&device);
        println!("  max tokens in flight: {max_tokens}");

        let planner = Planner::new(model, cluster);
        match planner.plan(&jobs) {
            Ok(p) => {
                println!(
                    "  planner: capacity {} tokens, predicted {:.0} tokens/sec{}",
                    p.capacity,
                    p.predicted_tokens_per_second,
                    p.predicted_bubble_ratio
                        .map_or(String::new(), |b| format!(", bubble {:.1}%", b * 100.0)),
                );
            }
            Err(e) => println!("  planner: {e}"),
        }
    }

    // Flush the Perfetto trace when LORAFUSION_TRACE=<path> is set.
    if let Some(path) = lorafusion_trace::trace_path() {
        lorafusion_trace::metrics::sample_counters();
        match lorafusion_trace::flush() {
            Ok(()) => println!("trace written to {}", path.display()),
            Err(e) => eprintln!("trace flush failed: {e}"),
        }
    }
}
