//! Multi-tenant fine-tuning scenario: the paper's motivating workload.
//!
//! ```sh
//! cargo run --release --example multi_job_finetune
//! ```
//!
//! A provider hosts LLaMa-3.1-70B on 4 H100s and receives four tenants'
//! LoRA fine-tuning jobs over different datasets. The example compares how
//! the four systems of Fig. 14 would serve this workload, then shows the
//! schedule LoRAFusion builds and verifies its dependency safety.

use lorafusion::prelude::*;
use lorafusion_dist::baselines::evaluate_system;
use lorafusion_sched::{verify_bubble_lemma, AdapterJob};

fn main() {
    let cluster = ClusterSpec::h100(4);
    let model = ModelPreset::Llama70b;
    let jobs: Vec<AdapterJob> = [
        DatasetPreset::XSum,
        DatasetPreset::CnnDailyMail,
        DatasetPreset::WikiSum,
        DatasetPreset::Mixed,
    ]
    .iter()
    .enumerate()
    .map(|(i, &preset)| AdapterJob {
        adapter: i,
        samples: Dataset::from_preset(preset, 128, 42 + i as u64).samples,
        global_batch_size: 32,
    })
    .collect();

    println!("tenant workload: 4 adapters on LLaMa-3.1-70B, 4x H100\n");
    println!(
        "{:<22} {:>12} {:>10} {:>6}",
        "system", "tokens/sec", "bubble %", "OOM"
    );
    let mut lorafusion_tput = 0.0;
    let mut best_other = 0.0f64;
    for kind in SystemKind::ALL {
        let r = evaluate_system(kind, model, &cluster, &jobs, 16, 16384);
        println!(
            "{:<22} {:>12.0} {:>10} {:>6}",
            kind.name(),
            r.tokens_per_second,
            r.bubble_ratio
                .map_or("-".to_string(), |b| format!("{:.1}", b * 100.0)),
            if r.oom { "yes" } else { "no" },
        );
        if kind == SystemKind::LoraFusion {
            lorafusion_tput = r.tokens_per_second;
        } else {
            best_other = best_other.max(r.tokens_per_second);
        }
    }
    println!(
        "\nLoRAFusion speedup over the best baseline: {:.2}x",
        lorafusion_tput / best_other.max(1e-9)
    );

    // Inspect the schedule itself.
    let cfg = lorafusion_sched::SchedulerConfig {
        capacity: 16384,
        pipeline_stages: 4,
        ..Default::default()
    };
    let schedule = lorafusion_sched::schedule_jobs(&jobs, &cfg).expect("schedulable");
    println!(
        "\nschedule: {} microbatches, groups {:?}, merge moved {} samples",
        schedule.microbatches.len(),
        schedule.groups,
        schedule.stats.merged_samples
    );
    let violations = verify_bubble_lemma(&schedule.microbatches, 4);
    println!(
        "bubble-lemma violations after verification: {}",
        violations.len()
    );
    assert!(
        violations.is_empty(),
        "scheduler must emit a dependency-safe plan"
    );

    // Peek at the first few microbatches.
    println!("\nfirst microbatches (adapter:tokens pairs):");
    for (i, mb) in schedule.microbatches.iter().take(6).enumerate() {
        let per_adapter: Vec<String> = mb
            .adapters()
            .into_iter()
            .map(|a| {
                let tokens: usize = mb
                    .entries
                    .iter()
                    .filter(|e| e.adapter == a)
                    .map(|e| e.sample.len)
                    .sum();
                format!("a{a}:{tokens}")
            })
            .collect();
        println!(
            "  mb{:<2} [{}] padded {} tokens",
            i,
            per_adapter.join(" "),
            mb.padded_tokens(64)
        );
    }

    // Flush the Perfetto trace when LORAFUSION_TRACE=<path> is set.
    if let Some(path) = lorafusion_trace::trace_path() {
        lorafusion_trace::metrics::sample_counters();
        match lorafusion_trace::flush() {
            Ok(()) => println!("trace written to {}", path.display()),
            Err(e) => eprintln!("trace flush failed: {e}"),
        }
    }
}
