//! Umbrella crate for the LoRAFusion reproduction workspace.
//!
//! This crate only re-exports the member crates so that the top-level
//! `examples/` and `tests/` directories can exercise the whole stack through
//! a single dependency. All functionality lives in the `crates/*` members.

pub use lorafusion as core;
pub use lorafusion_data as data;
pub use lorafusion_dist as dist;
pub use lorafusion_gpu as gpu;
pub use lorafusion_kernels as kernels;
pub use lorafusion_sched as sched;
pub use lorafusion_solver as solver;
pub use lorafusion_tensor as tensor;
