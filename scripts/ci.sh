#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test. No network access required —
# the workspace has zero external dependencies (see the root Cargo.toml),
# so everything below runs against the local toolchain only.
#
# Usage: scripts/ci.sh [--quick]
#   --quick  skip the release build (debug build + tests only)

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
fi

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$QUICK" -eq 0 ]]; then
  step "cargo build --release"
  cargo build --release
fi

step "cargo test (root package, the tier-1 gate)"
cargo test -q

step "cargo test --workspace"
cargo test -q --workspace

step "CI OK"
