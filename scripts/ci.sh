#!/usr/bin/env bash
# Offline CI gate: format, lint, build, test. No network access required —
# the workspace has zero external dependencies (see the root Cargo.toml),
# so everything below runs against the local toolchain only.
#
# Usage: scripts/ci.sh [--quick]
#   --quick  skip the release build (debug build + tests only)

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
fi

step() { printf '\n==> %s\n' "$*"; }

# Scratch dir for the machine-readable CI artifacts: the lint verdict
# lands here next to the trace and bench-regress artifacts produced by
# the gates further down.
TRACE_TMP="$(mktemp -d)"
DIGEST_TMP="$(mktemp -d)"
trap 'rm -rf "$TRACE_TMP" "$DIGEST_TMP"' EXIT

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

# Static invariants, both tiers (see DESIGN.md "Static invariants"): the
# token tier catches undocumented unsafe, nondeterministic iteration,
# wall-clock reads, thread-count dependence, SIMD confinement, external
# dependencies, ring encapsulation, and unsafe/pragma budget drift; the
# semantic tier rebuilds the workspace call graph and enforces the
# architecture.toml contract — the crate layering DAG (cross-checked
# against the real Cargo.toml dependency edges in BOTH directions, so a
# manifest/contract drift fails here), allocation- and panic-freedom
# from the hot rosters, and f32-reduction confinement. Runs in both the
# quick and full paths — it takes well under a second.
step "lorafusion-lint check (two-tier, --json verdict archived)"
cargo run -q -p lorafusion-lint -- check --json "$TRACE_TMP/lint_verdict.json"

# Dogfood: the linter's own fixture suite, parser/graph unit tests, and
# the self-check that re-scans the tree and re-derives both budget
# tables must hold before the rest of CI leans on the lint gate.
step "lorafusion-lint self-check (fixtures + dogfood)"
cargo test -q -p lorafusion-lint

if [[ "$QUICK" -eq 0 ]]; then
  step "cargo build --release"
  cargo build --release
fi

step "cargo test (root package, the tier-1 gate)"
cargo test -q

step "cargo test --workspace"
cargo test -q --workspace

# Fast determinism-and-sanity gate: bench_gemm asserts in-binary that every
# (layout, shape, threads) cell is bitwise-equal to its serial run, so a
# packing or tiling regression fails CI here rather than only in the
# nightly-style full-size (4096) run. BENCH_GEMM_WRITE=0 keeps the
# committed full-size results/BENCH_gemm.json untouched.
step "bench_gemm determinism gate (size 256)"
if [[ "$QUICK" -eq 0 ]]; then
  BENCH_GEMM_SIZE=256 BENCH_GEMM_WRITE=0 cargo run --release -q -p lorafusion-bench --bin bench_gemm
else
  BENCH_GEMM_SIZE=256 BENCH_GEMM_WRITE=0 cargo run -q -p lorafusion-bench --bin bench_gemm
fi

# Dual-path SIMD gate: the digest mode reduces every (layout, shape,
# threads) cell's output bits to an FNV-1a digest — a pure function of the
# computed bits. Run it once with SIMD forced off (the safe fallback path)
# and once under the default dispatch, then diff the two files: the
# explicit-SIMD kernel must be bitwise-equal to the fallback on every cell,
# on this host, on every CI run.
step "bench_gemm dual-path SIMD gate (size 128)"
if [[ "$QUICK" -eq 0 ]]; then
  LORAFUSION_SIMD=0 BENCH_GEMM_SIZE=128 BENCH_GEMM_WRITE=0 BENCH_GEMM_DIGEST="$DIGEST_TMP/fallback.txt" \
    cargo run --release -q -p lorafusion-bench --bin bench_gemm
  BENCH_GEMM_SIZE=128 BENCH_GEMM_WRITE=0 BENCH_GEMM_DIGEST="$DIGEST_TMP/default.txt" \
    cargo run --release -q -p lorafusion-bench --bin bench_gemm
else
  LORAFUSION_SIMD=0 BENCH_GEMM_SIZE=128 BENCH_GEMM_WRITE=0 BENCH_GEMM_DIGEST="$DIGEST_TMP/fallback.txt" \
    cargo run -q -p lorafusion-bench --bin bench_gemm
  BENCH_GEMM_SIZE=128 BENCH_GEMM_WRITE=0 BENCH_GEMM_DIGEST="$DIGEST_TMP/default.txt" \
    cargo run -q -p lorafusion-bench --bin bench_gemm
fi
diff "$DIGEST_TMP/fallback.txt" "$DIGEST_TMP/default.txt"

# Module-level gate: bench_lora asserts in-binary that the fused executor's
# forward output is bitwise-equal to the reference multi-pass baseline, its
# gradients agree to tolerance, and the fused step is bitwise reproducible
# at 1/2/4/8 threads. BENCH_LORA_WRITE=0 keeps the committed full-size
# results/BENCH_lora.json untouched.
step "bench_lora fused-vs-reference gate (hidden 128)"
if [[ "$QUICK" -eq 0 ]]; then
  BENCH_LORA_SIZE=128 BENCH_LORA_WRITE=0 cargo run --release -q -p lorafusion-bench --bin bench_lora
else
  BENCH_LORA_SIZE=128 BENCH_LORA_WRITE=0 cargo run -q -p lorafusion-bench --bin bench_lora
fi

# Observability gate: rerun the bench_lora gate with tracing armed, then
# validate the emitted Perfetto trace.json against the Chrome trace-event
# schema with the in-tree validator (trace_validate exits nonzero on any
# malformed event or if no counter tracks made it into the file).
step "trace emission + validation gate"
if [[ "$QUICK" -eq 0 ]]; then
  LORAFUSION_TRACE="$TRACE_TMP/trace.json" BENCH_LORA_SIZE=128 BENCH_LORA_WRITE=0 \
    cargo run --release -q -p lorafusion-bench --bin bench_lora
  cargo run --release -q -p lorafusion-bench --bin trace_validate -- \
    "$TRACE_TMP/trace.json" --require-counters 5
else
  LORAFUSION_TRACE="$TRACE_TMP/trace.json" BENCH_LORA_SIZE=128 BENCH_LORA_WRITE=0 \
    cargo run -q -p lorafusion-bench --bin bench_lora
  cargo run -q -p lorafusion-bench --bin trace_validate -- \
    "$TRACE_TMP/trace.json" --require-counters 5
fi

# Fused-loss gate: bench_loss asserts in-binary that the chunked fused
# linear+cross-entropy path is bitwise-equal to the unfused reference for
# every chunk size in its sweep (including a ragged non-divisor) and at
# 1/2/4/8 threads, that peak live logits memory shrinks by at least
# tokens/chunk, that the fused RMSNorm/SwiGLU chains match their
# multi-pass references bitwise, and that the chunked loss raises the
# Llama-8B memory-plan token capacity. Tracing is armed so the loss.*
# counter tracks can be checked by name.
step "bench_loss chunked fused linear+CE gate (96x64x512)"
if [[ "$QUICK" -eq 0 ]]; then
  LORAFUSION_TRACE="$TRACE_TMP/loss_trace.json" BENCH_LOSS_TOKENS=96 BENCH_LOSS_HIDDEN=64 \
    BENCH_LOSS_VOCAB=512 BENCH_LOSS_WRITE=0 cargo run --release -q -p lorafusion-bench --bin bench_loss
  cargo run --release -q -p lorafusion-bench --bin trace_validate -- \
    "$TRACE_TMP/loss_trace.json" \
    --require-counter loss.fused_calls \
    --require-counter loss.reference_calls \
    --require-counter loss.chunks \
    --require-counter chains.fused_calls \
    --require-histogram loss.chunk.tokens
else
  LORAFUSION_TRACE="$TRACE_TMP/loss_trace.json" BENCH_LOSS_TOKENS=96 BENCH_LOSS_HIDDEN=64 \
    BENCH_LOSS_VOCAB=512 BENCH_LOSS_WRITE=0 cargo run -q -p lorafusion-bench --bin bench_loss
  cargo run -q -p lorafusion-bench --bin trace_validate -- \
    "$TRACE_TMP/loss_trace.json" \
    --require-counter loss.fused_calls \
    --require-counter loss.reference_calls \
    --require-counter loss.chunks \
    --require-counter chains.fused_calls \
    --require-histogram loss.chunk.tokens
fi

# Online-scheduler gate: bench_scheduler asserts in-binary that a full
# event-stream replay is digest-identical run to run and that the final
# packing stays within the documented ε of a cold re-solve. The 512-event
# invocation keeps it fast; tracing is armed so the emitted trace can be
# checked for the repair-ladder counter tracks (scheduler.repack.* and
# the solver's warm-start prunes) by name.
step "bench_scheduler determinism + quality gate (512 events)"
if [[ "$QUICK" -eq 0 ]]; then
  LORAFUSION_TRACE="$TRACE_TMP/sched_trace.json" BENCH_SCHED_JOBS=128 BENCH_SCHED_EVENTS=512 \
    BENCH_SCHED_WRITE=0 cargo run --release -q -p lorafusion-bench --bin bench_scheduler
  cargo run --release -q -p lorafusion-bench --bin trace_validate -- \
    "$TRACE_TMP/sched_trace.json" \
    --require-counter scheduler.repack.local_repair \
    --require-counter scheduler.repack.warm_solves \
    --require-counter scheduler.repack.cold_solves \
    --require-counter solver.bb.warm_start_prunes \
    --require-histogram 'scheduler.event.padded_tokens{class=arrive}'
else
  LORAFUSION_TRACE="$TRACE_TMP/sched_trace.json" BENCH_SCHED_JOBS=128 BENCH_SCHED_EVENTS=512 \
    BENCH_SCHED_WRITE=0 cargo run -q -p lorafusion-bench --bin bench_scheduler
  cargo run -q -p lorafusion-bench --bin trace_validate -- \
    "$TRACE_TMP/sched_trace.json" \
    --require-counter scheduler.repack.local_repair \
    --require-counter scheduler.repack.warm_solves \
    --require-counter scheduler.repack.cold_solves \
    --require-counter solver.bb.warm_start_prunes \
    --require-histogram 'scheduler.event.padded_tokens{class=arrive}'
fi

# Bench-regression gate: diff every committed results/BENCH_*.json against
# its pinned copy under results/baselines/. Provenance fields (host_cores,
# detected_features, simd_path) are skipped, rate/latency fields get a wide
# relative band, and digests/counts must match exactly — so the gate is
# deterministic on any host while still catching a silently edited or
# regressed committed result. The machine-readable verdict lands in the CI
# temp dir for triage. Runs in both paths: it is a pure file diff.
step "bench_regress gate (results/ vs results/baselines/)"
cargo run -q -p lorafusion-bench --bin bench_regress -- \
  --out "$TRACE_TMP/bench_regress_verdict.json"

step "CI OK"
